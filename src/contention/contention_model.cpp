#include "contention/contention_model.h"

#include <algorithm>
#include <cassert>

namespace h2p {

double ContentionModel::slowdown(std::size_t victim_proc, double victim_sensitivity,
                                 std::span<const Aggressor> aggressors) const {
  double extra = 0.0;
  for (const Aggressor& a : aggressors) {
    if (a.proc_idx == victim_proc) continue;
    extra += soc_->coupling(victim_proc, a.proc_idx) * a.intensity;
  }
  return slowdown_from_extra(extra, victim_sensitivity);
}

void ContentionModel::fill_coupling_rows(std::span<double> rows,
                                         std::size_t padded_procs) const {
  const std::size_t P = soc_->num_processors();
  assert(padded_procs >= P && rows.size() >= P * padded_procs);
  for (std::size_t p = 0; p < P; ++p) {
    double* row = rows.data() + p * padded_procs;
    for (std::size_t q = 0; q < P; ++q) row[q] = soc_->coupling(p, q);
    for (std::size_t q = P; q < padded_procs; ++q) row[q] = 0.0;
  }
}

ContentionModel::PairResult ContentionModel::pairwise(std::size_t proc_a, double sens_a,
                                                      double int_a, std::size_t proc_b,
                                                      double sens_b, double int_b) const {
  PairResult r;
  const Aggressor from_b{proc_b, int_b};
  const Aggressor from_a{proc_a, int_a};
  r.slowdown_a = slowdown(proc_a, sens_a, std::span(&from_b, 1));
  r.slowdown_b = slowdown(proc_b, sens_b, std::span(&from_a, 1));
  return r;
}

double ContentionModel::intra_cluster_slowdown(double sens_a, double int_b,
                                               int cores_a, int cores_b) {
  if (cores_a <= 0 || cores_b <= 0) return 1.0;
  // Both workloads hammer the same shared L2: conflicting evictions hit
  // *every* workload hard regardless of how memory-bound it looks at the
  // bus level (high vulnerability floor), scale with how evenly the
  // cluster is split (worst at 50/50), and are far more destructive than
  // cross-cluster bus contention — up to ~70-75% for hostile mixes, the
  // Fig. 10 result that justifies per-cluster scheduling.
  const double total = cores_a + cores_b;
  const double balance = 4.0 * (cores_a / total) * (cores_b / total);  // 1 at 50/50
  constexpr double kIntraGamma = 0.75;
  constexpr double kIntraFloor = 0.45;
  const double victim = kIntraFloor + (1.0 - kIntraFloor) * std::clamp(sens_a, 0.0, 1.0);
  const double aggressor = kIntraFloor + (1.0 - kIntraFloor) * std::clamp(int_b, 0.0, 1.0);
  const double factor = 1.0 + kIntraGamma * balance * victim * aggressor;
  return std::min(factor, kMaxSlowdown);
}

}  // namespace h2p
