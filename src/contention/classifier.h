#pragma once

#include <span>
#include <vector>

namespace h2p {

/// Splits inference requests into high (H) and low (L) contention classes
/// by a percentile threshold over their contention intensities (§V-B).
class ContentionClassifier {
 public:
  /// `percentile` in [0, 1]: intensities at or above this sample percentile
  /// are classified high.  The paper uses "a percentage threshold"; 0.5
  /// (median split) is the default used in the evaluation.
  explicit ContentionClassifier(double percentile = 0.5) : percentile_(percentile) {}

  /// Learn the threshold from a population of intensities.
  void fit(std::span<const double> intensities);

  /// Set the threshold directly.
  void set_threshold(double t) { threshold_ = t; fitted_ = true; }

  [[nodiscard]] bool is_high(double intensity) const;
  [[nodiscard]] double threshold() const { return threshold_; }
  [[nodiscard]] bool fitted() const { return fitted_; }

  /// Classify a whole sequence: true = high contention.
  [[nodiscard]] std::vector<bool> classify(std::span<const double> intensities) const;

 private:
  double percentile_;
  double threshold_ = 0.5;
  bool fitted_ = false;
};

}  // namespace h2p
