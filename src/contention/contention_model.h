#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "soc/soc.h"

namespace h2p {

/// One co-running workload as the slowdown model sees it.
struct Aggressor {
  std::size_t proc_idx = 0;
  double intensity = 0.0;  // contention intensity in [0, 1]
};

/// Shared-memory-bus slowdown model (Eq. 2's T^co term).
///
///   slowdown(victim p) = 1 + sum_q gamma(p, q) * I_q * S_p
///
/// where gamma is the Soc's processor-pair coupling, I_q the aggressor's
/// contention intensity and S_p the victim's memory sensitivity (its
/// memory-bound execution-time share).  This construction yields
/// Observation 1 by design: the coupling term gamma * product is symmetric
/// up to each side's sensitivity, so a pair with similar memory-boundedness
/// sees similar slowdowns, and any pair involving the NPU sees almost none.
class ContentionModel {
 public:
  explicit ContentionModel(const Soc& soc) : soc_(&soc) {}

  /// Multiplicative slowdown factor (>= 1) for a victim on `victim_proc`
  /// with memory sensitivity `victim_sensitivity`, given concurrent
  /// aggressors.  Capped: a saturated bus cannot slow a task indefinitely.
  [[nodiscard]] double slowdown(std::size_t victim_proc, double victim_sensitivity,
                                std::span<const Aggressor> aggressors) const;

  /// The scalar tail of Eq. 2 once the aggressor sum is in hand: maps the
  /// accumulated `extra = sum_q gamma(p, q) * I_q` to the capped
  /// multiplicative factor.  The hot paths (DES rates, wavefront column
  /// rescoring) compute `extra` as a dense fixed-order dot product over
  /// per-processor intensity buffers (`util/simd.h`'s `fixed_dot`; the
  /// diagonal gamma(p, p) == 0 excludes self-contention exactly) and share
  /// this tail with the list-based `slowdown` above, so both formulations
  /// apply the identical vulnerability/cap arithmetic.  Defined inline:
  /// the DES prices every running task with it on every event, and an
  /// out-of-line call was measurable there.
  [[nodiscard]] static double slowdown_from_extra(double extra,
                                                  double victim_sensitivity) {
    // Vulnerability = floor + sensitivity term: even compute-bound victims
    // lose cycles to LLC pollution and row-buffer conflicts (the floor), and
    // memory-bound victims scale up from there (Table II magnitudes).
    const double s = victim_sensitivity < 0.0
                         ? 0.0
                         : (victim_sensitivity > 1.0 ? 1.0 : victim_sensitivity);
    const double vulnerability =
        kVulnerabilityFloor + (1.0 - kVulnerabilityFloor) * s;
    const double factor = 1.0 + extra * vulnerability;
    return factor < kMaxSlowdown ? factor : kMaxSlowdown;
  }

  /// Slowdown from a *degraded shared bus* (FaultKind::kBusDegrade): when
  /// the bus delivers only `bus_factor` of its bandwidth, a victim's
  /// memory-bound share stretches by 1/bus_factor while its compute-bound
  /// share is untouched — through the same vulnerability lens as Eq. 2, so
  /// compute-bound victims still pay the floor (LLC pollution does not
  /// care why the bus is busy) and the same kMaxSlowdown cap applies:
  ///
  ///   slowdown = 1 + vulnerability * (1/bus_factor - 1)
  ///
  /// Returns exactly 1.0 for a healthy bus (factor >= 1).  Scalar, inline,
  /// and shared verbatim by the SoA DES, the frozen reference simulator and
  /// the timeline verifier, so bus-degraded runs stay bit-identical across
  /// SIMD/scalar and serial/async builds.
  [[nodiscard]] static double bus_degrade_slowdown(double bus_factor,
                                                   double victim_sensitivity) {
    if (bus_factor >= 1.0) return 1.0;
    const double f = bus_factor < 0.05 ? 0.05 : bus_factor;
    const double s = victim_sensitivity < 0.0
                         ? 0.0
                         : (victim_sensitivity > 1.0 ? 1.0 : victim_sensitivity);
    const double vulnerability =
        kVulnerabilityFloor + (1.0 - kVulnerabilityFloor) * s;
    const double factor = 1.0 + vulnerability * (1.0 / f - 1.0);
    return factor < kMaxSlowdown ? factor : kMaxSlowdown;
  }

  /// Fill `rows` (stride `padded_procs`, one row per victim processor) with
  /// the Soc's coupling matrix: rows[p * padded_procs + q] = gamma(p, q) for
  /// q < num_processors, 0.0 beyond (zero-padding keeps the fixed-order dot
  /// product exact for any padded length).  The diagonal is 0 by Soc
  /// construction, which is what makes the dense aggressor sum gather-free:
  /// a victim's own intensity contributes gamma(p, p) * I_p = 0.
  void fill_coupling_rows(std::span<double> rows, std::size_t padded_procs) const;

  /// Static full-overlap pairwise co-execution estimate used by Table II:
  /// returns {slowdown_a, slowdown_b}.
  struct PairResult {
    double slowdown_a = 1.0;
    double slowdown_b = 1.0;
  };
  [[nodiscard]] PairResult pairwise(std::size_t proc_a, double sens_a, double int_a,
                                    std::size_t proc_b, double sens_b,
                                    double int_b) const;

  /// Fine-grained per-core contention inside one CPU cluster (Fig 10):
  /// splitting a cluster between two workloads causes conflicting L2
  /// evictions far beyond cross-cluster bus contention.  `cores_each` is the
  /// number of cores given to each of the two co-located workloads.
  [[nodiscard]] static double intra_cluster_slowdown(double sens_a, double int_b,
                                                     int cores_a, int cores_b);

  static constexpr double kMaxSlowdown = 2.5;
  /// A victim's vulnerability never drops to zero: cache pollution and
  /// row-buffer conflicts tax compute-bound workloads too.
  static constexpr double kVulnerabilityFloor = 0.35;

 private:
  const Soc* soc_;
};

}  // namespace h2p
