#pragma once

#include <span>
#include <vector>

#include "contention/linalg.h"

namespace h2p {

/// Ridge regression with the closed-form solution of Eq. (1):
///   W = (X^T X + alpha I)^-1 X^T Y
/// used to map PMU features {IPC, cache-miss rate, backend stalls} to a
/// model's contention intensity, so new inference requests can be scored
/// without profiling every co-execution combination.
class RidgeRegression {
 public:
  explicit RidgeRegression(double alpha = 1e-2, bool include_bias = true)
      : alpha_(alpha), include_bias_(include_bias) {}

  /// Fit on n samples of d features; y has n entries.  The bias column, when
  /// present, is not regularized.
  void fit(const std::vector<std::vector<double>>& x, std::span<const double> y);

  [[nodiscard]] double predict(std::span<const double> features) const;

  [[nodiscard]] const std::vector<double>& weights() const { return weights_; }
  [[nodiscard]] bool fitted() const { return !weights_.empty(); }

  /// Coefficient of determination on a dataset.
  [[nodiscard]] double r2(const std::vector<std::vector<double>>& x,
                          std::span<const double> y) const;

 private:
  double alpha_;
  bool include_bias_;
  std::vector<double> weights_;  // [d] or [d+1] with bias last
};

}  // namespace h2p
