#include "contention/ridge.h"

#include <cassert>
#include <stdexcept>

namespace h2p {

void RidgeRegression::fit(const std::vector<std::vector<double>>& x,
                          std::span<const double> y) {
  if (x.empty() || x.size() != y.size()) {
    throw std::runtime_error("RidgeRegression::fit: empty or mismatched data");
  }
  const std::size_t n = x.size();
  const std::size_t d_in = x.front().size();
  const std::size_t d = d_in + (include_bias_ ? 1 : 0);

  Matrix xm(n, d);
  for (std::size_t r = 0; r < n; ++r) {
    if (x[r].size() != d_in) throw std::runtime_error("RidgeRegression::fit: ragged X");
    for (std::size_t c = 0; c < d_in; ++c) xm.at(r, c) = x[r][c];
    if (include_bias_) xm.at(r, d_in) = 1.0;
  }

  const Matrix xt = xm.transpose();
  Matrix gram = xt * xm;
  for (std::size_t i = 0; i < d_in; ++i) gram.at(i, i) += alpha_;
  if (include_bias_) gram.at(d_in, d_in) += 1e-9;  // keep solvable, unpenalized

  std::vector<double> rhs(d, 0.0);
  for (std::size_t c = 0; c < d; ++c) {
    for (std::size_t r = 0; r < n; ++r) rhs[c] += xt.at(c, r) * y[r];
  }
  weights_ = solve(gram, rhs);
}

double RidgeRegression::predict(std::span<const double> features) const {
  assert(fitted());
  const std::size_t d_in = weights_.size() - (include_bias_ ? 1 : 0);
  assert(features.size() == d_in);
  double acc = include_bias_ ? weights_.back() : 0.0;
  for (std::size_t i = 0; i < d_in; ++i) acc += weights_[i] * features[i];
  return acc;
}

double RidgeRegression::r2(const std::vector<std::vector<double>>& x,
                           std::span<const double> y) const {
  if (x.empty()) return 0.0;
  double mean_y = 0.0;
  for (double v : y) mean_y += v;
  mean_y /= static_cast<double>(y.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = predict(x[i]);
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
  }
  if (ss_tot <= 0.0) return 1.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace h2p
