#include "runtime/kernels.h"

#include <chrono>

namespace h2p {
namespace {

/// One batch of dependent FMAs; small enough to poll the clock often.
double fma_batch(double seed, int iters) {
  double a = seed, b = 1.000000119, c = 0.9999999;
  for (int i = 0; i < iters; ++i) {
    a = a * b + c;
    b = b * 0.99999988 + 1e-9;
  }
  return a + b;
}

double measure_flops_per_us() {
  using Clock = std::chrono::steady_clock;
  constexpr int kIters = 200000;
  const auto start = Clock::now();
  volatile double sink = fma_batch(1.0, kIters);
  (void)sink;
  const auto end = Clock::now();
  const double us =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count() /
      1000.0;
  // ~4 FLOPs per iteration (two FMAs).
  return (4.0 * kIters) / (us > 0.0 ? us : 1.0);
}

}  // namespace

double calibrated_flops_per_us() {
  static const double value = measure_flops_per_us();
  return value;
}

double burn_compute_us(double microseconds) {
  using Clock = std::chrono::steady_clock;
  if (microseconds <= 0.0) return 0.0;
  const auto deadline =
      Clock::now() + std::chrono::nanoseconds(static_cast<std::int64_t>(
                         microseconds * 1000.0));
  double acc = 1.0;
  // Burn in modest batches so we overshoot the deadline by at most a batch.
  do {
    acc = fma_batch(acc, 512);
  } while (Clock::now() < deadline);
  return acc;
}

}  // namespace h2p
