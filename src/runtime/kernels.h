#pragma once

#include <cstdint>

namespace h2p {

/// Synthetic compute kernel: performs real fused-multiply-add work for
/// approximately `microseconds` of wall time on the calling thread.
/// Returns an accumulator value so the work cannot be optimized away.
/// Used by the runtime executor to stand in for NEON/OpenCL/NPU kernels.
double burn_compute_us(double microseconds);

/// Calibrated FLOP throughput of this host thread (FLOPs per microsecond),
/// measured once per process; exposed so tests can sanity-check the burner.
double calibrated_flops_per_us();

}  // namespace h2p
