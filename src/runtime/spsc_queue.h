#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

namespace h2p {

/// Bounded single-producer single-consumer ring buffer used for the tensor
/// hand-off between adjacent pipeline stages (one producer stage, one
/// consumer stage).  Lock-free: head owned by the consumer, tail by the
/// producer.
template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity = 256)
      : buffer_(capacity + 1) {}  // one slot wasted to distinguish full/empty

  bool push(T value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = (tail + 1) % buffer_.size();
    if (next == head_.load(std::memory_order_acquire)) return false;  // full
    buffer_[tail] = std::move(value);
    tail_.store(next, std::memory_order_release);
    return true;
  }

  std::optional<T> pop() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return std::nullopt;
    T value = std::move(buffer_[head]);
    head_.store((head + 1) % buffer_.size(), std::memory_order_release);
    return value;
  }

  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> buffer_;
  std::atomic<std::size_t> head_{0};
  std::atomic<std::size_t> tail_{0};
};

}  // namespace h2p
