#pragma once

#include <cstddef>
#include <vector>

#include "core/bubbles.h"
#include "core/plan.h"
#include "exec/compiled_plan.h"
#include "obs/drift.h"

namespace h2p {

/// One runtime job: a model slice bound to a home processor (= worker).
struct RuntimeJob {
  std::size_t model_idx = 0;
  std::size_t seq_in_model = 0;
  std::size_t home_proc = 0;
  double solo_ms = 0.0;  // planned duration in simulated milliseconds

  /// When set, `deps` lists the job indices that must ALL complete before
  /// this job is released (fork/join plans; empty = a root).  When unset,
  /// the legacy chain rule applies: wait for the same model's latest
  /// smaller seq_in_model.
  bool explicit_deps = false;
  std::vector<std::size_t> deps;
};

/// Execution record produced by the threaded run.
struct RuntimeRecord {
  std::size_t job_idx = 0;
  std::size_t worker = 0;
  double start_ms = 0.0;  // wall time since run start
  double end_ms = 0.0;
  bool stolen = false;  // executed by a worker other than its home
};

struct ExecutorOptions {
  /// Wall-clock microseconds of real compute burned per simulated
  /// millisecond (keeps tests fast while exercising true concurrency).
  double us_per_sim_ms = 20.0;
  bool allow_stealing = true;
  /// Prediction-drift capture (obs/drift.h): when set, each completed job
  /// pushes one SliceRecord — the arbitrating DES's predicted start/finish
  /// for that job against the executed wall times rescaled to modeled
  /// milliseconds — into the capture's lock-free per-thread buffer.  The
  /// worker-side cost is one branch and one buffer push; null (the default)
  /// costs one pointer compare.  The capture must outlive `run`; drain the
  /// buffer (obs::DriftTracker::drain) after run returns.
  const obs::DriftCapture* drift = nullptr;
};

struct RuntimeResult {
  std::vector<RuntimeRecord> records;  // indexed by job
  double wall_ms = 0.0;
  std::size_t steals = 0;
};

/// Thread-per-processor pipeline executor.
///
/// Demonstrates the system side of Hetero2Pipe with real concurrency: each
/// "processor" is a worker thread owning a Chase–Lev deque of ready jobs;
/// precedence — chain (slice k waits for slice k-1 of the same model) or
/// explicit fork/join edges (`RuntimeJob::deps`) — is enforced by atomic
/// dependency counters, and idle workers steal ready jobs from busy
/// neighbours — the runtime analogue of the planner's Algorithm-3
/// rebalancing.  Jobs burn real CPU via the synthetic kernels.
class PipelineExecutor {
 public:
  PipelineExecutor(std::size_t num_procs, ExecutorOptions options = {});

  /// Blocking: runs all jobs, returns per-job records.  Thread-safe to call
  /// repeatedly (workers are spawned per run).
  RuntimeResult run(const std::vector<RuntimeJob>& jobs) const;

  /// Map a compiled plan's slices 1:1 onto runtime jobs (home = processor).
  static std::vector<RuntimeJob> jobs_from_compiled(
      const exec::CompiledPlan& compiled);

  /// Thin wrapper: lower via exec::compile, then jobs_from_compiled.
  static std::vector<RuntimeJob> jobs_from_plan(const PipelinePlan& plan,
                                                const StaticEvaluator& eval);

 private:
  std::size_t num_procs_;
  ExecutorOptions options_;
};

}  // namespace h2p
