#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

namespace h2p {

/// Bounded lock-free Chase–Lev work-stealing deque.
///
/// Single owner thread pushes/pops at the bottom (LIFO); any number of
/// thieves steal from the top (FIFO).  Memory orderings follow Lê et al.,
/// "Correct and Efficient Work-Stealing for Weak Memory Models" (PPoPP'13).
/// Capacity is fixed (power of two); push fails when full rather than
/// resizing — the executor sizes deques for the whole job set up front.
///
/// T must be trivially copyable (the executor stores job indices).
template <typename T>
class WorkStealingDeque {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit WorkStealingDeque(std::size_t capacity_pow2 = 1024)
      : mask_(normalize(capacity_pow2) - 1), buffer_(normalize(capacity_pow2)) {}

  /// Owner only.  Returns false when full.
  bool push_bottom(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(buffer_.size())) return false;
    buffer_[static_cast<std::size_t>(b) & mask_].store(value,
                                                       std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
    return true;
  }

  /// Owner only.
  std::optional<T> pop_bottom() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t <= b) {
      T value = buffer_[static_cast<std::size_t>(b) & mask_].load(
          std::memory_order_relaxed);
      if (t == b) {
        // Last element: race against thieves for it.
        const bool won = top_.compare_exchange_strong(
            t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
        bottom_.store(b + 1, std::memory_order_relaxed);
        if (!won) return std::nullopt;
      }
      return value;
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return std::nullopt;
  }

  /// Any thread.
  std::optional<T> steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t < b) {
      T value = buffer_[static_cast<std::size_t>(t) & mask_].load(
          std::memory_order_relaxed);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return std::nullopt;  // lost the race; caller retries elsewhere
      }
      return value;
    }
    return std::nullopt;
  }

  /// Approximate size (racy; for monitoring/tests only).
  [[nodiscard]] std::size_t size_approx() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  /// Round up to the next power of two (capacity must be one for the mask).
  static std::size_t normalize(std::size_t cap) {
    std::size_t p = 1;
    while (p < cap && p < (std::size_t{1} << 30)) p <<= 1;
    return p;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::size_t mask_;
  std::vector<std::atomic<T>> buffer_;
};

}  // namespace h2p
