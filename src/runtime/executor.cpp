#include "runtime/executor.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/kernels.h"
#include "runtime/wsdeque.h"

namespace h2p {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
             .count() /
         1.0e6;
}

/// Mutex-guarded inbox: completion handlers run on arbitrary workers, but
/// Chase–Lev push is owner-only, so ready jobs are mailed to their home
/// worker which drains its inbox into its own deque.
class Inbox {
 public:
  void post(std::size_t job) {
    std::lock_guard lock(mu_);
    items_.push_back(job);
  }
  std::optional<std::size_t> take() {
    std::lock_guard lock(mu_);
    if (items_.empty()) return std::nullopt;
    const std::size_t job = items_.back();
    items_.pop_back();
    return job;
  }

 private:
  std::mutex mu_;
  std::vector<std::size_t> items_;
};

}  // namespace

PipelineExecutor::PipelineExecutor(std::size_t num_procs, ExecutorOptions options)
    : num_procs_(num_procs ? num_procs : 1), options_(options) {}

RuntimeResult PipelineExecutor::run(const std::vector<RuntimeJob>& jobs) const {
  RuntimeResult result;
  const std::size_t n = jobs.size();
  result.records.resize(n);
  if (n == 0) return result;

  // Predecessors / successors: a job either carries explicit fork/join
  // edges or falls back to the legacy chain rule (latest smaller seq of the
  // same model, first occurrence winning).  Either way each job ends up
  // with one pred list and an atomic remaining-count released to zero.
  // Both edge sets are CSR-packed (two flat arrays instead of n per-job
  // heap vectors); the successor fill iterates jobs in ascending order, so
  // each job's successor run keeps the order the per-job vectors had.
  std::vector<int> chain_pred(n, -1);
  std::vector<std::size_t> pred_offsets(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (jobs[i].explicit_deps) {
      for (const std::size_t d : jobs[i].deps) {
        if (d >= n) {
          throw std::invalid_argument("run: job depends on unknown job");
        }
      }
      pred_offsets[i + 1] = jobs[i].deps.size();
      continue;
    }
    int pred = -1;
    for (std::size_t j = 0; j < n; ++j) {
      if (jobs[j].model_idx != jobs[i].model_idx) continue;
      if (jobs[j].seq_in_model >= jobs[i].seq_in_model) continue;
      if (pred < 0 ||
          jobs[static_cast<std::size_t>(pred)].seq_in_model < jobs[j].seq_in_model) {
        pred = static_cast<int>(j);
      }
    }
    chain_pred[i] = pred;
    pred_offsets[i + 1] = pred >= 0 ? 1 : 0;
  }
  for (std::size_t i = 0; i < n; ++i) pred_offsets[i + 1] += pred_offsets[i];
  std::vector<std::size_t> pred_edges(pred_offsets[n]);
  std::vector<std::size_t> succ_offsets(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t w = pred_offsets[i];
    if (jobs[i].explicit_deps) {
      for (const std::size_t d : jobs[i].deps) pred_edges[w++] = d;
    } else if (chain_pred[i] >= 0) {
      pred_edges[w++] = static_cast<std::size_t>(chain_pred[i]);
    }
  }
  for (const std::size_t p : pred_edges) ++succ_offsets[p + 1];
  for (std::size_t i = 0; i < n; ++i) succ_offsets[i + 1] += succ_offsets[i];
  std::vector<std::size_t> succ_edges(pred_edges.size());
  {
    std::vector<std::size_t> cursor(succ_offsets.begin(), succ_offsets.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t e = pred_offsets[i]; e < pred_offsets[i + 1]; ++e) {
        succ_edges[cursor[pred_edges[e]]++] = i;
      }
    }
  }
  const auto remaining = std::make_unique<std::atomic<std::size_t>[]>(n);
  for (std::size_t i = 0; i < n; ++i) {
    remaining[i].store(pred_offsets[i + 1] - pred_offsets[i],
                       std::memory_order_relaxed);
  }

  std::vector<std::unique_ptr<WorkStealingDeque<std::size_t>>> deques;
  std::vector<std::unique_ptr<Inbox>> inboxes;
  for (std::size_t p = 0; p < num_procs_; ++p) {
    deques.push_back(std::make_unique<WorkStealingDeque<std::size_t>>(4096));
    inboxes.push_back(std::make_unique<Inbox>());
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (pred_offsets[i + 1] == pred_offsets[i]) {
      inboxes[jobs[i].home_proc % num_procs_]->post(i);
    }
  }

  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> steals{0};

  // Drift capture: the per-model chain tail, for slice-kind classification
  // on the workers without a scan per job.
  const obs::DriftCapture* drift =
      options_.drift != nullptr && options_.drift->buffer != nullptr
          ? options_.drift
          : nullptr;
  std::vector<std::size_t> drift_last_seq;
  if (drift != nullptr) {
    std::size_t num_models = 0;
    for (const RuntimeJob& j : jobs) {
      num_models = std::max(num_models, j.model_idx + 1);
    }
    drift_last_seq.assign(num_models, 0);
    for (const RuntimeJob& j : jobs) {
      drift_last_seq[j.model_idx] =
          std::max(drift_last_seq[j.model_idx], j.seq_in_model);
    }
  }

  const auto t0 = Clock::now();

  auto worker_fn = [&](std::size_t me) {
    if (obs::Tracer::global().enabled()) {
      obs::Tracer::global().name_current_thread("executor-worker-" +
                                                std::to_string(me));
    }
    auto& my_deque = *deques[me];
    auto& my_inbox = *inboxes[me];
    std::size_t victim = (me + 1) % num_procs_;

    while (completed.load(std::memory_order_acquire) < n) {
      // Drain mailbox into the owned deque.
      while (auto mailed = my_inbox.take()) my_deque.push_bottom(*mailed);

      std::optional<std::size_t> job = my_deque.pop_bottom();
      bool was_stolen = false;
      if (!job && options_.allow_stealing && num_procs_ > 1) {
        for (std::size_t attempt = 0; attempt + 1 < num_procs_ && !job; ++attempt) {
          victim = (victim + 1) % num_procs_;
          if (victim == me) victim = (victim + 1) % num_procs_;
          job = deques[victim]->steal();
        }
        was_stolen = job.has_value();
      }
      if (!job) {
        std::this_thread::yield();
        continue;
      }

      const std::size_t i = *job;
      RuntimeRecord& rec = result.records[i];
      rec.job_idx = i;
      rec.worker = me;
      rec.stolen = was_stolen || (jobs[i].home_proc % num_procs_) != me;
      rec.start_ms = ms_since(t0);
      {
        obs::Span job_span("rt.job");
        job_span.arg("model", static_cast<double>(jobs[i].model_idx));
        job_span.arg("seq", static_cast<double>(jobs[i].seq_in_model));
        burn_compute_us(jobs[i].solo_ms * options_.us_per_sim_ms);
      }
      rec.end_ms = ms_since(t0);
      static obs::Counter& c_jobs = obs::Registry::global().counter("rt.jobs");
      c_jobs.inc();
      if (rec.stolen) {
        steals.fetch_add(1, std::memory_order_relaxed);
        static obs::Counter& c_steals =
            obs::Registry::global().counter("rt.steals");
        c_steals.inc();
      }
      if (drift != nullptr && i < drift->predicted.size()) {
        obs::SliceRecord srec;
        srec.window = drift->window;
        srec.model_idx = jobs[i].model_idx;
        srec.seq_in_model = jobs[i].seq_in_model;
        srec.proc = jobs[i].home_proc % num_procs_;
        srec.kind = obs::classify_slice(jobs[i].seq_in_model,
                                        drift_last_seq[jobs[i].model_idx]);
        srec.thermal_bucket = drift->thermal_bucket;
        srec.bus_factor = drift->bus_factor;
        srec.predicted_start_ms = drift->predicted[i].start_ms;
        srec.predicted_finish_ms = drift->predicted[i].finish_ms;
        srec.executed_start_ms = rec.start_ms * drift->wall_ms_to_model;
        srec.executed_finish_ms = rec.end_ms * drift->wall_ms_to_model;
        srec.migrated = rec.stolen;
        drift->buffer->push(srec);
      }

      for (std::size_t e = succ_offsets[i]; e < succ_offsets[i + 1]; ++e) {
        const std::size_t s = succ_edges[e];
        // Last-retiring predecessor releases the successor (join barrier).
        if (remaining[s].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          inboxes[jobs[s].home_proc % num_procs_]->post(s);
        }
      }
      completed.fetch_add(1, std::memory_order_release);
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(num_procs_);
  for (std::size_t p = 0; p < num_procs_; ++p) workers.emplace_back(worker_fn, p);
  for (auto& w : workers) w.join();

  result.wall_ms = ms_since(t0);
  result.steals = steals.load();
  obs::Log::global().info("rt.run_done", {{"jobs", n},
                                          {"workers", num_procs_},
                                          {"steals", result.steals},
                                          {"wall_ms", result.wall_ms}});
  return result;
}

std::vector<RuntimeJob> PipelineExecutor::jobs_from_compiled(
    const exec::CompiledPlan& compiled) {
  std::vector<RuntimeJob> jobs;
  jobs.reserve(compiled.slices.size());
  for (const exec::ScheduledSlice& s : compiled.slices) {
    RuntimeJob job;
    job.model_idx = s.model_idx;
    job.seq_in_model = s.seq_in_model;
    job.home_proc = s.proc_idx;
    job.solo_ms = s.solo_ms();
    // Slices map 1:1 onto jobs, so the global slice indices in `deps` are
    // job indices verbatim.
    job.explicit_deps = true;
    job.deps = s.deps;
    jobs.push_back(job);
  }
  return jobs;
}

std::vector<RuntimeJob> PipelineExecutor::jobs_from_plan(
    const PipelinePlan& plan, const StaticEvaluator& eval) {
  return jobs_from_compiled(exec::compile(plan, eval));
}

}  // namespace h2p
