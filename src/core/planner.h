#pragma once

#include <cstddef>

#include "core/bubbles.h"
#include "core/mitigation.h"
#include "core/plan.h"
#include "core/work_stealing.h"

namespace h2p {

/// Knobs for the two-step planner.  Disabling `contention_mitigation` and
/// `tail_optimization` together yields the paper's "No C/T" ablation.
struct PlannerOptions {
  bool contention_mitigation = true;
  bool work_stealing = true;
  bool tail_optimization = true;
  /// H/L split percentile for the contention classifier (§V-B).
  double classifier_percentile = 0.7;
  /// Pipeline depth; 0 uses every processor of the Soc.
  std::size_t num_stages = 0;

  static PlannerOptions no_ct() {
    PlannerOptions o;
    o.contention_mitigation = false;
    o.tail_optimization = false;
    return o;
  }
};

/// Planner output plus the intermediate artifacts the benches report.
struct PlannerReport {
  PipelinePlan plan;
  MitigationResult mitigation;
  double static_makespan_ms = 0.0;
  double static_bubble_ms = 0.0;
  int layers_stolen = 0;
  /// Constraint (6): false when some wavefront column's resident weights +
  /// activations exceed the device's free memory — the caller should shrink
  /// the request window (or shed large models) before executing.
  bool memory_ok = true;
};

/// Hetero2Pipe: the paper's two-step pipeline planner.
///
///  1. Horizontal (P1): slice every model independently with the
///     Algorithm-1 dynamic program over the Soc's processor chain.
///  2. Vertical (P2): classify contention intensity, re-order the request
///     sequence via linear assignment (Algorithm 2), then align stage
///     times across the pipeline by work stealing (Algorithm 3) and
///     squeeze the drain tail.
class Hetero2PipePlanner {
 public:
  Hetero2PipePlanner(const StaticEvaluator& eval, PlannerOptions opts = {})
      : eval_(&eval), opts_(opts) {}

  [[nodiscard]] PlannerReport plan() const;

  [[nodiscard]] const PlannerOptions& options() const { return opts_; }

 private:
  const StaticEvaluator* eval_;
  PlannerOptions opts_;
};

}  // namespace h2p
