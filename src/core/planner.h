#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/bubbles.h"
#include "core/mitigation.h"
#include "core/plan.h"
#include "core/work_stealing.h"

namespace h2p {

class ThreadPool;

namespace exec {
struct CompiledPlan;
}  // namespace exec

/// Knobs for the two-step planner.  Disabling `contention_mitigation` and
/// `tail_optimization` together yields the paper's "No C/T" ablation.
struct PlannerOptions {
  bool contention_mitigation = true;
  bool work_stealing = true;
  bool tail_optimization = true;
  /// H/L split percentile for the contention classifier (§V-B).
  double classifier_percentile = 0.7;
  /// Pipeline depth; 0 uses every processor of the Soc.
  std::size_t num_stages = 0;

  static PlannerOptions no_ct() {
    PlannerOptions o;
    o.contention_mitigation = false;
    o.tail_optimization = false;
    return o;
  }
};

/// Planner output plus the intermediate artifacts the benches report.
struct PlannerReport {
  PipelinePlan plan;
  MitigationResult mitigation;
  double static_makespan_ms = 0.0;
  double static_bubble_ms = 0.0;
  int layers_stolen = 0;
  /// Constraint (6): false when some wavefront column's resident weights +
  /// activations exceed the device's free memory — the caller should shrink
  /// the request window (or shed large models) before executing.
  bool memory_ok = true;
};

/// Hetero2Pipe: the paper's two-step pipeline planner.
///
///  1. Horizontal (P1): slice every model independently with the
///     Algorithm-1 dynamic program over the Soc's processor chain.
///  2. Vertical (P2): classify contention intensity, re-order the request
///     sequence via linear assignment (Algorithm 2), then align stage
///     times across the pipeline by work stealing (Algorithm 3) and
///     squeeze the drain tail.
/// A non-null `pool` fans out the independent parts of the cold path (the
/// per-model Algorithm-1 DPs, the mitigated-vs-identity finalize branches,
/// and the tail search's candidate scorings).  The pooled planner is
/// guaranteed to emit a bit-identical PipelinePlan to the sequential one:
/// every fan-out collects results by index and reduces in a fixed order.
class Hetero2PipePlanner {
 public:
  Hetero2PipePlanner(const StaticEvaluator& eval, PlannerOptions opts = {},
                     ThreadPool* pool = nullptr)
      : eval_(&eval), opts_(opts), pool_(pool) {}

  [[nodiscard]] PlannerReport plan() const;

  /// Warm-start replanning from a near-miss cached plan (same SoC + knobs,
  /// model multiset within one add/remove/substitute of this evaluator's —
  /// the entries `exec::PlanCache::find_near` serves).  Instead of running
  /// Algorithm 1 and the full mitigation + alignment passes from scratch,
  /// the seed's per-model boundaries and its mitigated order are inherited;
  /// only the one model the window adds (if any) is DP-sliced, placed into
  /// the removed model's slot (Def.-4 permitting) with its slicing
  /// auditioned by the incremental static scorer, and the result is settled
  /// with two DES evaluations plus one DES-scored tail sweep — against the
  /// cold path's two full DES-aligned branches, which is what makes a warm
  /// replan several times cheaper than a cold one.  Returns nullopt when
  /// the seed is unusable (stage-count mismatch, more than one model of
  /// delta, non-grid seed); callers then fall back to `plan()`.
  ///
  /// A warm-started plan is NOT guaranteed bit-identical to the cold plan
  /// for the same window — it is a different (cheaper) search path.  Tests
  /// validate score-equivalence on one-model-delta windows, and the online
  /// loop only takes this path behind `OnlineOptions::warm_start`.
  [[nodiscard]] std::optional<PlannerReport> plan_warm(
      const exec::CompiledPlan& seed) const;

  /// Degraded warm-start: replan the SAME window after processors dropped
  /// out, seeding from the plan compiled for the healthy SoC.  This
  /// planner's evaluator must be built for the degraded SoC view (one stage
  /// per surviving processor); `kept_procs[k]` names the healthy-plan stage
  /// that degraded stage k corresponds to (strictly increasing).  Each
  /// model keeps its slicing on surviving stages; a dropped stage's layer
  /// range is merged into the adjacent surviving stage (previous if one
  /// exists, else next), and the imbalance that merge introduces is settled
  /// the same way plan_warm settles: a DES-arbitrated static re-alignment
  /// plus one DES-scored tail sweep.  Returns nullopt when the seed is
  /// unusable (stage/processor-map mismatch, different model multiset,
  /// non-grid seed); callers then fall back to a cold plan on the degraded
  /// view.
  [[nodiscard]] std::optional<PlannerReport> plan_degraded(
      const exec::CompiledPlan& seed,
      const std::vector<std::size_t>& kept_procs) const;

  [[nodiscard]] const PlannerOptions& options() const { return opts_; }

 private:
  const StaticEvaluator* eval_;
  PlannerOptions opts_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace h2p
