#include "core/work_stealing.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "core/incremental.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace h2p {

std::vector<std::size_t> slices_to_boundaries(const ModelPlan& mp,
                                              std::size_t num_layers) {
  const std::size_t K = mp.slices.size();
  std::vector<std::size_t> b(K + 1, 0);
  std::size_t cursor = 0;
  for (std::size_t k = 0; k < K; ++k) {
    b[k] = cursor;
    if (!mp.slices[k].empty()) cursor = mp.slices[k].end;
  }
  b[K] = num_layers;
  return b;
}

void boundaries_to_slices(ModelPlan& mp, const std::vector<std::size_t>& b) {
  const std::size_t K = mp.slices.size();
  for (std::size_t k = 0; k < K; ++k) mp.slices[k] = Slice{b[k], b[k + 1]};
}

int align_to_profile(ModelPlan& mp, const StaticEvaluator& eval,
                     std::span<const double> target, std::size_t max_moves) {
  const std::size_t K = mp.slices.size();
  const std::size_t n = eval.model(mp.model_index).num_layers();
  if (K < 2 || n == 0) return 0;

  std::vector<std::size_t> b = slices_to_boundaries(mp, n);
  boundaries_to_slices(mp, b);  // normalize empties into canonical form

  // Solo time of stage k spanning [lo, hi) — the same quantity
  // StaticEvaluator::stage_solo_ms reads, straight off the cost table so
  // probes need no ModelPlan copies.
  const CostTable& table = eval.table(mp.model_index);
  const auto stage_ms = [&table](std::size_t k, std::size_t lo, std::size_t hi) {
    if (hi <= lo) return 0.0;
    double ms = table.exec_ms(k, lo, hi - 1);
    if (lo > 0) ms += table.boundary_copy_ms(k, lo);
    return ms;
  };

  // Per-stage deviation from the target profile, maintained incrementally:
  // shifting boundary k only re-times stages k-1 and k.
  std::vector<double> dev(K);
  double current = 0.0;
  for (std::size_t k = 0; k < K; ++k) {
    dev[k] = std::fabs(stage_ms(k, b[k], b[k + 1]) - target[k]);
    current += dev[k];
  }

  int moves = 0;
  for (std::size_t iter = 0; iter < max_moves; ++iter) {
    double best = current;
    std::size_t best_k = 0;
    int best_dir = 0;
    double best_dev_lo = 0.0;
    double best_dev_hi = 0.0;
    for (std::size_t k = 1; k < K; ++k) {
      for (int dir : {-1, +1}) {
        if (dir < 0 && (b[k] == 0 || b[k] - 1 < b[k - 1])) continue;
        if (dir > 0 && b[k] + 1 > b[k + 1]) continue;
        const std::size_t nb =
            dir < 0 ? b[k] - 1 : b[k] + 1;
        const double dev_lo = std::fabs(stage_ms(k - 1, b[k - 1], nb) - target[k - 1]);
        const double dev_hi = std::fabs(stage_ms(k, nb, b[k + 1]) - target[k]);
        const double d = current - dev[k - 1] - dev[k] + dev_lo + dev_hi;
        if (d + 1e-12 < best) {
          best = d;
          best_k = k;
          best_dir = dir;
          best_dev_lo = dev_lo;
          best_dev_hi = dev_hi;
        }
      }
    }
    if (best_dir == 0) break;
    b[best_k] = best_dir < 0 ? b[best_k] - 1 : b[best_k] + 1;
    dev[best_k - 1] = best_dev_lo;
    dev[best_k] = best_dev_hi;
    current = best;
    ++moves;
  }
  boundaries_to_slices(mp, b);
  return moves;
}

int vertical_align(PipelinePlan& plan, const StaticEvaluator& eval,
                   const WorkStealingOptions& opts, const PlanScorer& scorer,
                   ThreadPool* pool) {
  const std::size_t K = plan.num_stages;
  const std::size_t m = plan.models.size();
  if (K < 2 || m < 2) return 0;

  int total_moves = 0;
  for (std::size_t u = 0; u < m; u += K) {  // slide the CW by step K
    const std::size_t end = std::min(u + K, m);
    if (end - u < 2) break;

    // Critical path: the member with the largest total processing time.
    std::size_t ic = u;
    double worst = -1.0;
    for (std::size_t i = u; i < end; ++i) {
      double sum = 0.0;
      for (std::size_t k = 0; k < K; ++k) sum += eval.stage_solo_ms(plan.models[i], k);
      if (sum > worst) {
        worst = sum;
        ic = i;
      }
    }

    std::vector<double> target(K, 0.0);
    for (std::size_t k = 0; k < K; ++k) {
      target[k] = eval.stage_solo_ms(plan.models[ic], k);
    }

    // Work-steal right (models after the critical path) then left (before),
    // mirroring Algorithm 3's two inner loops.
    for (std::size_t i = ic + 1; i < end; ++i) {
      total_moves += align_to_profile(plan.models[i], eval, target,
                                      opts.max_moves_per_model);
    }
    for (std::size_t i = ic; i-- > u;) {
      total_moves += align_to_profile(plan.models[i], eval, target,
                                      opts.max_moves_per_model);
    }
  }

  if (opts.tail_optimization) optimize_tail(plan, eval, scorer, pool);
  return total_moves;
}

bool optimize_tail(PipelinePlan& plan, const StaticEvaluator& eval,
                   const PlanScorer& scorer, ThreadPool* pool) {
  const std::size_t K = plan.num_stages;
  const std::size_t m = plan.models.size();
  if (K < 2 || m == 0) return false;
  obs::Span span("planner.tail_sweep");
  span.arg("models", static_cast<double>(m));
  const bool use_static = !scorer;

  IncrementalStaticScorer inc(eval, plan);
  // Score of the *current* plan, carried across the sweep — both scorers
  // are deterministic and the plan only changes on an accepted candidate,
  // so this equals re-scoring the plan from scratch every iteration.
  double plan_score = use_static ? inc.base_score() : scorer(plan);

  // §V-C phase 2: local search re-allocating workloads, tail-first (the
  // drain columns benefit most), then over the rest of the sequence — each
  // model's candidate set is the K single-processor collapses, accepted
  // only when the score strictly improves.
  bool changed = false;
  std::vector<Slice> collapsed(K);
  std::vector<double> cand_score(K, 0.0);
  std::vector<char> viable(K, 0);
  const auto make_collapsed = [&](std::size_t s, std::size_t n) {
    std::fill(collapsed.begin(), collapsed.end(), Slice{0, 0});
    collapsed[s] = Slice{0, n};
  };
  for (std::size_t t = 0; t < m; ++t) {
    const std::size_t i = m - 1 - t;
    const std::size_t n = eval.model(plan.models[i].model_index).num_layers();
    const double best_before = plan_score;

    // Pre-filter the K collapses (§V-C: "the search space is only K").
    // Both skips are decision-preserving: a candidate identical to the
    // current layout scores exactly plan_score (never a strict
    // improvement), and a candidate whose busiest-processor solo work
    // already exceeds the incumbent cannot be accepted by the DES either —
    // contention and chaining only push the makespan further up.
    for (std::size_t s = 0; s < K; ++s) {
      make_collapsed(s, n);
      const std::vector<Slice>& cur = plan.models[i].slices;
      if (std::equal(collapsed.begin(), collapsed.end(), cur.begin(), cur.end())) {
        viable[s] = 0;
        continue;
      }
      if (!use_static &&
          inc.des_lower_bound_with(i, collapsed) >= best_before + 1e-6) {
        viable[s] = 0;
        continue;
      }
      viable[s] = 1;
    }

    if (use_static) {
      // Incremental static scoring: only the ≤ K affected wavefront
      // columns are recomputed per candidate; values are bit-identical to
      // a fresh full evaluation.
      for (std::size_t s = 0; s < K; ++s) {
        if (!viable[s]) continue;
        make_collapsed(s, n);
        cand_score[s] = inc.score_with(i, collapsed);
      }
    } else {
      // Full DES scoring for the surviving candidates, by value so pooled
      // workers never touch the shared plan.
      std::vector<std::size_t> todo;
      for (std::size_t s = 0; s < K; ++s) {
        if (viable[s]) todo.push_back(s);
      }
      parallel_for(pool, todo.size(), [&](std::size_t idx) {
        const std::size_t s = todo[idx];
        // Thread-local candidate: assignment reuses each worker's slice
        // capacity across sweeps, so pooled workers never touch the shared
        // plan AND stop re-allocating a full plan copy per candidate.
        thread_local PipelinePlan candidate;
        candidate = plan;
        std::fill(candidate.models[i].slices.begin(),
                  candidate.models[i].slices.end(), Slice{0, 0});
        candidate.models[i].slices[s] = Slice{0, n};
        cand_score[s] = scorer(candidate);
      });
    }

    // Reduce in ascending collapse order — the sequential loop's original
    // tie-breaking, independent of scoring order.
    double best = best_before;
    int accepted = -1;
    for (std::size_t s = 0; s < K; ++s) {
      if (!viable[s]) continue;
      if (cand_score[s] + 1e-9 < best) {
        best = cand_score[s];
        accepted = static_cast<int>(s);
      }
    }
    if (accepted >= 0) {
      make_collapsed(static_cast<std::size_t>(accepted), n);
      plan.models[i].slices.assign(collapsed.begin(), collapsed.end());
      inc.apply(i, plan.models[i].slices);
      plan_score = best;
      changed = true;
    }
  }
  return changed;
}

}  // namespace h2p
