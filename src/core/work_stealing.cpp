#include "core/work_stealing.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace h2p {
namespace {

/// slices <-> boundary representation: b[0]=0 <= b[1] <= ... <= b[K] = n,
/// stage k spans [b[k], b[k+1]).
std::vector<std::size_t> to_boundaries(const ModelPlan& mp, std::size_t n) {
  const std::size_t K = mp.slices.size();
  std::vector<std::size_t> b(K + 1, 0);
  b[K] = n;
  std::size_t cursor = 0;
  for (std::size_t k = 0; k < K; ++k) {
    b[k] = cursor;
    if (!mp.slices[k].empty()) cursor = mp.slices[k].end;
  }
  b[K] = n;
  return b;
}

void from_boundaries(ModelPlan& mp, const std::vector<std::size_t>& b) {
  const std::size_t K = mp.slices.size();
  for (std::size_t k = 0; k < K; ++k) mp.slices[k] = Slice{b[k], b[k + 1]};
}

double profile_distance(const ModelPlan& mp, const StaticEvaluator& eval,
                        std::span<const double> target) {
  double d = 0.0;
  for (std::size_t k = 0; k < mp.slices.size(); ++k) {
    d += std::fabs(eval.stage_solo_ms(mp, k) - target[k]);
  }
  return d;
}

}  // namespace

int align_to_profile(ModelPlan& mp, const StaticEvaluator& eval,
                     std::span<const double> target, std::size_t max_moves) {
  const std::size_t K = mp.slices.size();
  const std::size_t n = eval.model(mp.model_index).num_layers();
  if (K < 2 || n == 0) return 0;

  std::vector<std::size_t> b = to_boundaries(mp, n);
  from_boundaries(mp, b);  // normalize empties into canonical form

  int moves = 0;
  double current = profile_distance(mp, eval, target);
  for (std::size_t iter = 0; iter < max_moves; ++iter) {
    double best = current;
    std::size_t best_k = 0;
    int best_dir = 0;
    for (std::size_t k = 1; k < K; ++k) {
      for (int dir : {-1, +1}) {
        const std::size_t nb = b[k] + static_cast<std::size_t>(dir);
        if (dir < 0 && b[k] == 0) continue;
        if (dir < 0 && b[k] - 1 < b[k - 1]) continue;
        if (dir > 0 && b[k] + 1 > b[k + 1]) continue;
        std::vector<std::size_t> trial = b;
        trial[k] = nb;
        ModelPlan probe = mp;
        from_boundaries(probe, trial);
        const double d = profile_distance(probe, eval, target);
        if (d + 1e-12 < best) {
          best = d;
          best_k = k;
          best_dir = dir;
        }
      }
    }
    if (best_dir == 0) break;
    b[best_k] += static_cast<std::size_t>(best_dir);
    from_boundaries(mp, b);
    current = best;
    ++moves;
  }
  return moves;
}

int vertical_align(PipelinePlan& plan, const StaticEvaluator& eval,
                   const WorkStealingOptions& opts, const PlanScorer& scorer) {
  const std::size_t K = plan.num_stages;
  const std::size_t m = plan.models.size();
  if (K < 2 || m < 2) return 0;

  int total_moves = 0;
  for (std::size_t u = 0; u < m; u += K) {  // slide the CW by step K
    const std::size_t end = std::min(u + K, m);
    if (end - u < 2) break;

    // Critical path: the member with the largest total processing time.
    std::size_t ic = u;
    double worst = -1.0;
    for (std::size_t i = u; i < end; ++i) {
      double sum = 0.0;
      for (std::size_t k = 0; k < K; ++k) sum += eval.stage_solo_ms(plan.models[i], k);
      if (sum > worst) {
        worst = sum;
        ic = i;
      }
    }

    std::vector<double> target(K, 0.0);
    for (std::size_t k = 0; k < K; ++k) {
      target[k] = eval.stage_solo_ms(plan.models[ic], k);
    }

    // Work-steal right (models after the critical path) then left (before),
    // mirroring Algorithm 3's two inner loops.
    for (std::size_t i = ic + 1; i < end; ++i) {
      total_moves += align_to_profile(plan.models[i], eval, target,
                                      opts.max_moves_per_model);
    }
    for (std::size_t i = ic; i-- > u;) {
      total_moves += align_to_profile(plan.models[i], eval, target,
                                      opts.max_moves_per_model);
    }
  }

  if (opts.tail_optimization) optimize_tail(plan, eval, scorer);
  return total_moves;
}

bool optimize_tail(PipelinePlan& plan, const StaticEvaluator& eval,
                   const PlanScorer& scorer) {
  const std::size_t K = plan.num_stages;
  const std::size_t m = plan.models.size();
  if (K < 2 || m == 0) return false;
  const PlanScorer score = scorer ? scorer : PlanScorer([&eval](const PipelinePlan& p) {
    return eval.makespan_ms(p, /*with_contention=*/true);
  });

  // §V-C phase 2: local search re-allocating workloads, tail-first (the
  // drain columns benefit most), then over the rest of the sequence — each
  // model's candidate set is the K single-processor collapses, accepted
  // only when the static contention-aware makespan strictly improves.
  bool changed = false;
  for (std::size_t t = 0; t < m; ++t) {
    const std::size_t i = m - 1 - t;
    const std::size_t n = eval.model(plan.models[i].model_index).num_layers();
    double best = score(plan);
    std::vector<Slice> best_slices = plan.models[i].slices;

    // Exhaustive over the K single-processor collapses (§V-C: "the search
    // space is only K").
    for (std::size_t s = 0; s < K; ++s) {
      std::vector<Slice> collapsed(K, Slice{0, 0});
      collapsed[s] = Slice{0, n};
      plan.models[i].slices = collapsed;
      const double cand = score(plan);
      if (cand + 1e-9 < best) {
        best = cand;
        best_slices = collapsed;
        changed = true;
      }
    }
    plan.models[i].slices = best_slices;
  }
  return changed;
}

}  // namespace h2p
