#include "core/graph_planner.h"

#include <algorithm>
#include <limits>

#include "core/incremental.h"
#include "core/partition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/pipeline_sim.h"

namespace h2p {
namespace {

std::vector<Model> linearize_all(const std::vector<const GraphModel*>& graphs) {
  std::vector<Model> models;
  models.reserve(graphs.size());
  for (const GraphModel* g : graphs) models.push_back(g->linearize());
  return models;
}

std::vector<const Model*> model_pointers(const std::vector<Model>& models) {
  std::vector<const Model*> ptrs;
  ptrs.reserve(models.size());
  for (const Model& m : models) ptrs.push_back(&m);
  return ptrs;
}

/// One schedulable range of a slot before global dep wiring: layers
/// [begin, end) of the linearized model on `proc`.
struct Proto {
  std::size_t proc = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// A slot's schedule as an ordered list of groups: every member of group g
/// depends on every member of group g-1 (chain groups have one member;
/// parallel groups hold co-running branches).
using SlotGroups = std::vector<std::vector<Proto>>;

/// Branch stage cost on processor q: execution plus the inbound cut copy
/// (charged exactly like lower_range, i.e. only when the range does not
/// start the model).
double range_cost(const CostTable& t, std::size_t q, std::size_t lo,
                  std::size_t hi) {
  double c = t.exec_ms(q, lo, hi - 1);
  if (lo > 0) c += t.boundary_copy_ms(q, lo);
  return c;
}

}  // namespace

GraphPlanner::GraphPlanner(const Soc& soc, std::vector<const GraphModel*> graphs,
                           PlannerOptions opts, ThreadPool* pool)
    : graphs_(std::move(graphs)),
      linearized_(linearize_all(graphs_)),
      model_ptrs_(model_pointers(linearized_)),
      opts_(opts),
      pool_(pool),
      eval_(soc, model_ptrs_, pool),
      chain_planner_(eval_, opts, pool) {}

GraphPlannerReport GraphPlanner::plan() const {
  static obs::Counter& c_plans =
      obs::Registry::global().counter("graph_planner.plans");
  static obs::Counter& c_offloads =
      obs::Registry::global().counter("graph_planner.offloaded_branches");
  c_plans.inc();
  obs::Span span("graph_planner.plan");
  span.arg("graphs", static_cast<double>(graphs_.size()));

  GraphPlannerReport rep;
  rep.chain_report = chain_planner_.plan();
  exec::CompiledPlan chain = exec::compile(rep.chain_report.plan, eval_);
  const std::size_t K = chain.num_stages;

  const auto des_ms = [this](const exec::CompiledPlan& plan) {
    // Thread-local SoA lowering + scratch: arbitration runs allocation-free
    // after the first evaluation on each pool thread.
    return simulate_compiled_makespan(plan, eval_.soc());
  };

  // Per-slot chain slices in seq order (global indices into chain.slices).
  std::vector<std::vector<std::size_t>> chain_by_slot(chain.num_models);
  for (std::size_t i = 0; i < chain.slices.size(); ++i) {
    chain_by_slot[chain.slices[i].model_idx].push_back(i);
  }

  // Build each slot's candidate group list.  Chain slots (and branchy slots
  // where no offload survives the static check) reproduce the chain
  // schedule verbatim.
  std::vector<SlotGroups> slot_groups(chain.num_models);
  std::vector<bool> slot_is_dag(chain.num_models, false);
  std::size_t offloaded = 0;

  for (std::size_t slot = 0; slot < chain.num_models; ++slot) {
    const std::size_t idx = chain.original_index[slot];
    const GraphModel& graph = *graphs_[idx];
    const CostTable& table = eval_.table(idx);
    const std::size_t n = linearized_[idx].num_layers();

    SlotGroups chain_groups;
    for (const std::size_t gi : chain_by_slot[slot]) {
      const exec::ScheduledSlice& s = chain.slices[gi];
      chain_groups.push_back({Proto{s.proc_idx, s.layers.begin, s.layers.end}});
    }

    if (graph.is_chain() || n == 0) {
      slot_groups[slot] = std::move(chain_groups);
      continue;
    }

    // Re-slice the slot with Algorithm 1 restricted to the boundaries right
    // after articulation nodes, so no stage straddles a fork/join segment.
    const GraphDecomposition d = graph.decompose();
    std::vector<std::size_t> legal;
    for (std::size_t pos = 0; pos < n; ++pos) {
      if (d.articulation[pos]) legal.push_back(pos + 1);
    }
    const PartitionResult part =
        partition_minmax_restricted(stage_cost_fn(table), n, K, legal);

    SlotGroups groups;
    std::size_t slot_offloads = 0;
    for (std::size_t k = 0; k < part.slices.size(); ++k) {
      const Slice sl = part.slices[k];
      if (sl.empty()) continue;
      const std::size_t home = k;

      std::size_t cursor = sl.begin;
      for (const GraphDecomposition::Segment& seg : d.segments) {
        if (seg.branches.size() < 2) continue;
        const std::size_t ilo = seg.branches.front().front();
        const std::size_t ihi =
            seg.join_pos < d.order.size() ? seg.join_pos : d.order.size();
        if (ilo < sl.begin || ihi > sl.end || ilo < cursor) continue;
        // Branch bodies must be contiguous position runs (the LIFO
        // topological order keeps them so; guard hand-built graphs).
        bool contiguous = true;
        for (const std::vector<std::size_t>& b : seg.branches) {
          if (b.back() - b.front() + 1 != b.size()) contiguous = false;
        }
        if (!contiguous) continue;

        // Affinity assignment: LPT list scheduling over per-processor
        // loads.  The heaviest branch (by home-stage cost) anchors the home
        // processor; remaining branches, heaviest first, each go to the
        // processor minimizing load + own cost *on that processor* — so a
        // branch is offloaded to a slower processor exactly when co-running
        // there beats queueing behind the home stage.  Ties break to the
        // lowest index: deterministic.
        const std::size_t nb = seg.branches.size();
        std::vector<double> home_ms(nb);
        std::vector<std::size_t> by_weight(nb);
        for (std::size_t b = 0; b < nb; ++b) {
          const auto& br = seg.branches[b];
          home_ms[b] = range_cost(table, home, br.front(), br.back() + 1);
          by_weight[b] = b;
        }
        std::sort(by_weight.begin(), by_weight.end(),
                  [&](std::size_t a, std::size_t b) {
                    if (home_ms[a] != home_ms[b]) return home_ms[a] > home_ms[b];
                    return a < b;
                  });
        std::vector<std::size_t> assign(nb, home);
        std::vector<double> load(K, 0.0);
        load[home] = home_ms[by_weight.front()];
        for (std::size_t w = 1; w < nb; ++w) {
          const std::size_t b = by_weight[w];
          const auto& br = seg.branches[b];
          std::size_t best_q = home;
          double best_finish = load[home] + home_ms[b];
          for (std::size_t q = 0; q < K; ++q) {
            if (q == home) continue;
            const double finish =
                load[q] + range_cost(table, q, br.front(), br.back() + 1);
            if (finish < best_finish - 1e-12) {
              best_finish = finish;
              best_q = q;
            }
          }
          assign[b] = best_q;
          load[best_q] = best_finish;
        }
        bool any_off = false;
        for (const std::size_t a : assign) any_off = any_off || a != home;
        if (!any_off) continue;

        // Static fork/join arbitration: do the co-running branches beat the
        // *contiguous* home-stage run of the same layers?  (Not per-branch
        // serial slices — the chain never pays per-branch copy-ins, so that
        // baseline would flatter the split.)
        std::vector<exec::ScheduledSlice> split;
        for (std::size_t b = 0; b < seg.branches.size(); ++b) {
          const auto& br = seg.branches[b];
          split.push_back(exec::lower_range(eval_, idx, slot, 0, assign[b],
                                            br.front(), br.back() + 1));
        }
        const double split_ms =
            fork_join_wavefront_ms(eval_.contention(), split);
        const double serial_ms = range_cost(table, home, ilo, ihi);
        if (!(split_ms + 1e-9 < serial_ms)) continue;

        // Accepted: chain prefix up to the fork, then the parallel group.
        if (cursor < ilo) groups.push_back({Proto{home, cursor, ilo}});
        std::vector<Proto> par;
        for (std::size_t b = 0; b < seg.branches.size(); ++b) {
          const auto& br = seg.branches[b];
          par.push_back(Proto{assign[b], br.front(), br.back() + 1});
          if (assign[b] != home) ++slot_offloads;
        }
        groups.push_back(std::move(par));
        cursor = ihi;
      }
      if (cursor < sl.end) groups.push_back({Proto{home, cursor, sl.end}});
    }

    if (slot_offloads == 0) {
      slot_groups[slot] = std::move(chain_groups);
    } else {
      slot_groups[slot] = std::move(groups);
      slot_is_dag[slot] = true;
      offloaded += slot_offloads;
    }
  }

  if (offloaded == 0) {
    rep.compiled = std::move(chain);
    rep.chain_des_ms = rep.final_des_ms = des_ms(rep.compiled);
    return rep;
  }

  // Assemble the fork/join candidate: slot-major, groups in order, every
  // member of a group depending on every member of the previous group.
  exec::CompiledPlan cand;
  cand.num_stages = K;
  cand.num_models = chain.num_models;
  cand.original_index = chain.original_index;
  cand.model_names = chain.model_names;
  cand.resident_bytes.assign(chain.num_models, 0.0);
  for (std::size_t slot = 0; slot < chain.num_models; ++slot) {
    std::vector<std::size_t> prev_group;
    std::size_t seq = 0;
    for (const std::vector<Proto>& group : slot_groups[slot]) {
      std::vector<std::size_t> cur_group;
      for (const Proto& p : group) {
        exec::ScheduledSlice s = exec::lower_range(
            eval_, cand.original_index[slot], slot, seq, p.proc, p.begin, p.end);
        s.deps = prev_group;
        cur_group.push_back(cand.slices.size());
        cand.slices.push_back(std::move(s));
      }
      prev_group = std::move(cur_group);
      ++seq;
    }
    // Footprint: merged occupied range per stage, like CompiledPlanBuilder.
    ModelPlan mp;
    mp.model_index = cand.original_index[slot];
    mp.slices.assign(K, Slice{0, 0});
    for (const std::vector<Proto>& group : slot_groups[slot]) {
      for (const Proto& p : group) {
        Slice& cell = mp.slices[p.proc];
        if (cell.empty()) {
          cell = Slice{p.begin, p.end};
        } else {
          cell.begin = std::min(cell.begin, p.begin);
          cell.end = std::max(cell.end, p.end);
        }
      }
    }
    cand.resident_bytes[slot] = eval_.resident_bytes(mp);
  }

  // One whole-window DES each way; the fork/join plan must not be worse.
  rep.chain_des_ms = des_ms(chain);
  rep.final_des_ms = des_ms(cand);
  if (rep.final_des_ms <= rep.chain_des_ms + 1e-9) {
    rep.compiled = std::move(cand);
    rep.dag_accepted = true;
    rep.offloaded_branches = offloaded;
    for (std::size_t slot = 0; slot < slot_is_dag.size(); ++slot) {
      if (slot_is_dag[slot]) rep.dag_slots.push_back(slot);
    }
    c_offloads.inc(offloaded);
    obs::Tracer::global().instant("graph_planner.dag_accepted");
  } else {
    rep.compiled = std::move(chain);
    rep.final_des_ms = rep.chain_des_ms;
  }
  span.arg("offloaded", static_cast<double>(rep.offloaded_branches));
  return rep;
}

}  // namespace h2p
