#include "core/serialize.h"

#include <stdexcept>

namespace h2p {
namespace {

const char* proc_kind_name(ProcKind k) { return to_string(k); }

ProcKind proc_kind_from(const std::string& s) {
  for (ProcKind k : {ProcKind::kNpu, ProcKind::kCpuBig, ProcKind::kGpu,
                     ProcKind::kCpuSmall, ProcKind::kDesktopGpu}) {
    if (s == to_string(k)) return k;
  }
  throw std::runtime_error("soc_from_json: unknown processor kind " + s);
}

}  // namespace

Json soc_to_json(const Soc& soc) {
  Json j = Json::object();
  j["name"] = Json::string(soc.name());
  j["bus_bw_gbps"] = Json::number(soc.bus_bw_gbps());
  j["mem_capacity_bytes"] = Json::number(soc.mem_capacity_bytes());
  j["available_bytes"] = Json::number(soc.available_bytes());

  Json procs = Json::array();
  for (const Processor& p : soc.processors()) {
    Json pj = Json::object();
    pj["name"] = Json::string(p.name);
    pj["kind"] = Json::string(proc_kind_name(p.kind));
    pj["peak_gflops"] = Json::number(p.peak_gflops);
    pj["mem_bw_gbps"] = Json::number(p.mem_bw_gbps);
    pj["l2_bytes"] = Json::number(p.l2_bytes);
    pj["launch_overhead_ms"] = Json::number(p.launch_overhead_ms);
    pj["batch_capacity"] = Json::number(p.batch_capacity);
    pj["copy_in_latency_ms"] = Json::number(p.copy_in_latency_ms);
    pj["tdp_watts"] = Json::number(p.tdp_watts);
    procs.push_back(std::move(pj));
  }
  j["processors"] = std::move(procs);

  Json states = Json::array();
  for (const MemFreqState& s : soc.mem_states()) {
    Json sj = Json::object();
    sj["mhz"] = Json::number(s.mhz);
    sj["bw_gbps"] = Json::number(s.bw_gbps);
    states.push_back(std::move(sj));
  }
  j["mem_states"] = std::move(states);
  return j;
}

Soc soc_from_json(const Json& j) {
  std::vector<Processor> procs;
  const Json& pj = j.at("processors");
  for (std::size_t i = 0; i < pj.size(); ++i) {
    const Json& p = pj.at(i);
    Processor proc;
    proc.name = p.at("name").as_string();
    proc.kind = proc_kind_from(p.at("kind").as_string());
    proc.peak_gflops = p.at("peak_gflops").as_number();
    proc.mem_bw_gbps = p.at("mem_bw_gbps").as_number();
    proc.l2_bytes = p.at("l2_bytes").as_number();
    proc.launch_overhead_ms = p.at("launch_overhead_ms").as_number();
    proc.batch_capacity = static_cast<int>(p.at("batch_capacity").as_number());
    proc.copy_in_latency_ms = p.at("copy_in_latency_ms").as_number();
    proc.tdp_watts = p.at("tdp_watts").as_number();
    procs.push_back(std::move(proc));
  }

  std::vector<MemFreqState> states;
  const Json& sj = j.at("mem_states");
  for (std::size_t i = 0; i < sj.size(); ++i) {
    states.push_back(MemFreqState{sj.at(i).at("mhz").as_number(),
                                  sj.at(i).at("bw_gbps").as_number()});
  }

  return Soc(j.at("name").as_string(), std::move(procs),
             j.at("bus_bw_gbps").as_number(),
             j.at("mem_capacity_bytes").as_number(),
             j.at("available_bytes").as_number(), std::move(states));
}

Json plan_to_json(const PipelinePlan& plan) {
  Json j = Json::object();
  j["num_stages"] = Json::number(static_cast<double>(plan.num_stages));
  Json models = Json::array();
  for (const ModelPlan& mp : plan.models) {
    Json mj = Json::object();
    mj["model_index"] = Json::number(static_cast<double>(mp.model_index));
    mj["high_contention"] = Json::boolean(mp.high_contention);
    Json slices = Json::array();
    for (const Slice& s : mp.slices) {
      Json sj = Json::array();
      sj.push_back(Json::number(static_cast<double>(s.begin)));
      sj.push_back(Json::number(static_cast<double>(s.end)));
      slices.push_back(std::move(sj));
    }
    mj["slices"] = std::move(slices);
    models.push_back(std::move(mj));
  }
  j["models"] = std::move(models);
  return j;
}

PipelinePlan plan_from_json(const Json& j) {
  PipelinePlan plan;
  plan.num_stages = static_cast<std::size_t>(j.at("num_stages").as_number());
  const Json& models = j.at("models");
  for (std::size_t i = 0; i < models.size(); ++i) {
    const Json& mj = models.at(i);
    ModelPlan mp;
    mp.model_index = static_cast<std::size_t>(mj.at("model_index").as_number());
    mp.high_contention = mj.at("high_contention").as_bool();
    const Json& slices = mj.at("slices");
    for (std::size_t k = 0; k < slices.size(); ++k) {
      mp.slices.push_back(
          Slice{static_cast<std::size_t>(slices.at(k).at(0).as_number()),
                static_cast<std::size_t>(slices.at(k).at(1).as_number())});
    }
    if (mp.slices.size() != plan.num_stages) {
      throw std::runtime_error("plan_from_json: slice count != num_stages");
    }
    plan.models.push_back(std::move(mp));
  }
  return plan;
}

Json graph_to_json(const GraphModel& graph) {
  Json j = Json::object();
  j["name"] = Json::string(graph.name());
  Json nodes = Json::array();
  for (std::size_t id = 0; id < graph.num_nodes(); ++id) {
    const Layer& l = graph.layer(id);
    Json nj = Json::object();
    nj["name"] = Json::string(l.name);
    nj["kind"] = Json::string(to_string(l.kind));
    nj["flops"] = Json::number(l.flops);
    nj["param_bytes"] = Json::number(l.param_bytes);
    nj["input_bytes"] = Json::number(l.input_bytes);
    nj["output_bytes"] = Json::number(l.output_bytes);
    nj["working_set_bytes"] = Json::number(l.working_set_bytes);
    nj["locality"] = Json::number(l.locality);
    Json inputs = Json::array();
    for (const std::size_t in : graph.inputs(id)) {
      inputs.push_back(Json::number(static_cast<double>(in)));
    }
    nj["inputs"] = std::move(inputs);
    nodes.push_back(std::move(nj));
  }
  j["nodes"] = std::move(nodes);
  return j;
}

GraphModel graph_from_json(const Json& j) {
  GraphModel graph(j.at("name").as_string());
  const Json& nodes = j.at("nodes");
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    const Json& nj = nodes.at(id);
    Layer l;
    l.name = nj.at("name").as_string();
    if (!layer_kind_from_string(nj.at("kind").as_string(), &l.kind)) {
      throw std::runtime_error("graph_from_json: unknown layer kind " +
                               nj.at("kind").as_string());
    }
    l.flops = nj.at("flops").as_number();
    l.param_bytes = nj.at("param_bytes").as_number();
    l.input_bytes = nj.at("input_bytes").as_number();
    l.output_bytes = nj.at("output_bytes").as_number();
    l.working_set_bytes = nj.at("working_set_bytes").as_number();
    l.locality = nj.at("locality").as_number();
    const Json& inputs = nj.at("inputs");
    std::vector<std::size_t> ins;
    for (std::size_t k = 0; k < inputs.size(); ++k) {
      const double v = inputs.at(k).as_number();
      if (v < 0 || static_cast<std::size_t>(v) >= id) {
        throw std::runtime_error(
            "graph_from_json: node input must reference an earlier node");
      }
      ins.push_back(static_cast<std::size_t>(v));
    }
    graph.add(std::move(l), std::move(ins));
  }
  if (!graph.is_valid_dag()) {
    throw std::runtime_error("graph_from_json: not a DAG");
  }
  return graph;
}

Json timeline_to_json(const Timeline& timeline) {
  Json j = Json::object();
  j["num_procs"] = Json::number(static_cast<double>(timeline.num_procs));
  j["num_models"] = Json::number(static_cast<double>(timeline.num_models));
  j["makespan_ms"] = Json::number(timeline.makespan_ms());
  j["throughput_per_s"] = Json::number(timeline.throughput_per_s());
  j["total_bubble_ms"] = Json::number(timeline.total_bubble_ms());
  Json tasks = Json::array();
  for (const TaskRecord& t : timeline.tasks) {
    Json tj = Json::object();
    tj["model"] = Json::number(static_cast<double>(t.model_idx));
    tj["seq"] = Json::number(static_cast<double>(t.seq_in_model));
    tj["proc"] = Json::number(static_cast<double>(t.proc_idx));
    tj["start_ms"] = Json::number(t.start_ms);
    tj["end_ms"] = Json::number(t.end_ms);
    tj["solo_ms"] = Json::number(t.solo_ms);
    tasks.push_back(std::move(tj));
  }
  j["tasks"] = std::move(tasks);
  return j;
}

Json calibration_report_to_json(const obs::CalibrationReport& report) {
  Json j = Json::object();
  j["schema"] = Json::string("h2p.drift/v1");
  j["records"] = Json::number(static_cast<double>(report.records));
  j["skipped"] = Json::number(static_cast<double>(report.skipped));
  j["alerts"] = Json::number(static_cast<double>(report.alerts));
  j["ewma_abs_rel_err"] = Json::number(report.ewma_abs_rel_err);
  j["mean_abs_rel_err"] = Json::number(report.mean_abs_rel_err());
  j["min_samples"] = Json::number(static_cast<double>(report.min_samples));
  Json cells = Json::array();
  for (const obs::DriftCell& cell : report.cells) {
    Json cj = Json::object();
    cj["proc"] = Json::number(static_cast<double>(cell.proc));
    cj["kind"] = Json::string(obs::to_string(cell.kind));
    cj["thermal_bucket"] =
        Json::number(static_cast<double>(cell.thermal_bucket));
    cj["count"] = Json::number(static_cast<double>(cell.count));
    cj["sum_predicted_ms"] = Json::number(cell.sum_predicted_ms);
    cj["sum_executed_ms"] = Json::number(cell.sum_executed_ms);
    cj["sum_rel_err"] = Json::number(cell.sum_rel_err);
    cj["sum_abs_rel_err"] = Json::number(cell.sum_abs_rel_err);
    cj["max_abs_rel_err"] = Json::number(cell.max_abs_rel_err);
    cj["correction"] = Json::number(cell.correction());
    cj["confidence"] = Json::number(cell.confidence(report.min_samples));
    cj["mean_rel_err"] = Json::number(cell.mean_rel_err());
    cj["mean_abs_rel_err"] = Json::number(cell.mean_abs_rel_err());
    cells.push_back(std::move(cj));
  }
  j["cells"] = std::move(cells);
  return j;
}

obs::CalibrationReport calibration_report_from_json(const Json& j) {
  if (j.contains("schema") && j.at("schema").as_string() != "h2p.drift/v1") {
    throw std::runtime_error("calibration_report_from_json: unknown schema " +
                             j.at("schema").as_string());
  }
  obs::CalibrationReport report;
  report.records = static_cast<std::uint64_t>(j.at("records").as_number());
  report.skipped = static_cast<std::uint64_t>(j.at("skipped").as_number());
  report.alerts = static_cast<std::uint64_t>(j.at("alerts").as_number());
  report.ewma_abs_rel_err = j.at("ewma_abs_rel_err").as_number();
  report.min_samples =
      static_cast<std::size_t>(j.at("min_samples").as_number());
  const Json& cells = j.at("cells");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Json& cj = cells.at(i);
    obs::DriftCell cell;
    cell.proc = static_cast<std::size_t>(cj.at("proc").as_number());
    cell.kind = obs::parse_slice_kind(cj.at("kind").as_string());
    cell.thermal_bucket =
        static_cast<std::size_t>(cj.at("thermal_bucket").as_number());
    cell.count = static_cast<std::uint64_t>(cj.at("count").as_number());
    cell.sum_predicted_ms = cj.at("sum_predicted_ms").as_number();
    cell.sum_executed_ms = cj.at("sum_executed_ms").as_number();
    cell.sum_rel_err = cj.at("sum_rel_err").as_number();
    cell.sum_abs_rel_err = cj.at("sum_abs_rel_err").as_number();
    cell.max_abs_rel_err = cj.at("max_abs_rel_err").as_number();
    report.cells.push_back(cell);
  }
  return report;
}

}  // namespace h2p
