#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace h2p {

/// Half-open layer range [begin, end) forming one pipeline stage of one
/// model (Def. 1).  Stage k always maps to processor k of the Soc, which is
/// ordered by descending processing power (§IV).  Empty slices are legal:
/// a model may skip a processor entirely.
struct Slice {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] bool empty() const { return end <= begin; }
  [[nodiscard]] std::size_t size() const { return empty() ? 0 : end - begin; }

  friend bool operator==(const Slice&, const Slice&) = default;
};

/// The K-way slicing of one model in the pipeline.
struct ModelPlan {
  /// Index into the *original* request sequence (survives reordering).
  std::size_t model_index = 0;
  /// One slice per pipeline stage; slices tile [0, n) in order.
  std::vector<Slice> slices;
  /// High-contention flag assigned by the classifier (used by Alg. 2/3).
  bool high_contention = false;

  [[nodiscard]] std::size_t num_stages() const { return slices.size(); }

  /// True if slices are contiguous, ordered and cover exactly [0, n).
  [[nodiscard]] bool covers(std::size_t num_layers) const;
};

/// A full pipelining plan: the (possibly re-ordered) request sequence with a
/// K-way slicing per model.
struct PipelinePlan {
  std::size_t num_stages = 0;
  /// Models in pipeline-injection order.
  std::vector<ModelPlan> models;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace h2p
