#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/bubbles.h"
#include "core/plan.h"
#include "exec/compiled_plan.h"

namespace h2p {

/// Incremental static (wavefront) scorer for single-model plan edits.
///
/// `StaticEvaluator::makespan_ms` rebuilds the full stage_times grid and
/// every wavefront column's contended maximum — O(m·K²) contention work per
/// call.  The local-search passes, however, only ever change *one* model's
/// slices between scorings, and model slot i participates only in wavefront
/// columns j ∈ [i, i+K-1]: all other columns are unaffected.  This class
/// caches the per-cell solo/intensity/sensitivity values and the per-column
/// maxima, so re-scoring one model's candidate slices costs O(K²) contention
/// work plus an O(m+K) column-sum instead of the full grid.
///
/// Determinism contract: `score_with` / `base_score` are **bit-identical**
/// to a fresh `eval.makespan_ms(plan, /*with_contention=*/true)` on the
/// edited plan.  Affected columns are recomputed with the exact member
/// enumeration, aggressor ordering and max/sum reduction order of the
/// non-incremental code, and untouched columns reuse maxima that were
/// themselves computed that way, so every floating-point operation sequence
/// matches.  The planner's figure benches therefore reproduce unchanged.
///
/// `score_with` and `des_lower_bound_with` are const and touch no shared
/// mutable state — safe to call concurrently for independent candidates.
class IncrementalStaticScorer {
 public:
  IncrementalStaticScorer(const StaticEvaluator& eval, const PipelinePlan& plan);

  /// Static contended makespan of the current base plan.
  [[nodiscard]] double base_score() const { return base_score_; }

  /// Static contended makespan of the base plan with model slot `slot`'s
  /// slices replaced by `slices`.  Bit-identical to the full evaluation.
  [[nodiscard]] double score_with(std::size_t slot,
                                  std::span<const Slice> slices) const;

  /// Static contended makespan of the base plan with a *new* model (cost
  /// table `model_index`) appended as slot m.  Appending only perturbs the
  /// trailing wavefront columns j ∈ [m, m+K-1] — every earlier column has no
  /// member from the new row — so the evaluation is O(K²) contention work,
  /// like `score_with`.  Bit-identical to a full evaluation of the
  /// (m+1)-slot plan.  Warm-start replanning uses this to audition candidate
  /// slicings of the one model a near-miss window adds.
  [[nodiscard]] double score_appended(std::size_t model_index,
                                      std::span<const Slice> slices) const;

  /// Commit an appended row: the scorer now tracks m+1 slots.
  void apply_appended(std::size_t model_index, std::span<const Slice> slices);

  /// Lower bound on the *discrete-event* makespan of the edited plan: the
  /// busiest processor's total solo work.  Processors run one task at a
  /// time and contention only dilates tasks, so no schedule finishes before
  /// its busiest processor's solo sum.  Used to prune collapse candidates
  /// before paying for a DES scoring; the bound is conservative so pruning
  /// never changes which candidate the search accepts.
  [[nodiscard]] double des_lower_bound_with(std::size_t slot,
                                            std::span<const Slice> slices) const;

  /// Commit `slices` into the base plan and refresh the affected caches.
  void apply(std::size_t slot, std::span<const Slice> slices);

 private:
  /// One model row's per-stage values, viewed as raw per-stage arrays of
  /// `Kp_` entries (stages K_..Kp_-1 are zero padding).  The storage lives
  /// in a thread-local arena workspace in the .cpp, so concurrent
  /// score_with calls from pooled planning threads never touch the heap —
  /// the old std::vector-backed rows could still `resize` mid-scoring on a
  /// thread's first call.
  struct RowView {
    const double* solo = nullptr;
    const double* intensity = nullptr;
    const double* sensitivity = nullptr;
    const std::uint8_t* active = nullptr;  // non-empty slice (member criterion)
  };

  /// Per-stage solo/intensity/sensitivity of `slices` for one model (by
  /// cost-table index, so appended rows need no pre-registered slot),
  /// written into the calling thread's workspace row.
  RowView fill_row(std::size_t model_index, std::span<const Slice> slices) const;

  /// Copy a filled row into the flat cell arrays at `slot` (which must
  /// already be within the arrays' extent).
  void store_row(std::size_t slot, const RowView& row);

  /// Contended maximum of wavefront column j, reading row `slot` from
  /// `row_override` and every other row from the flat cell cache.
  /// Reproduces StaticEvaluator::stage_times + makespan_ms for that column
  /// exactly: same k-ascending member enumeration, the same dense
  /// fixed-order Eq. 2 dot product (util/simd.h), and a lane-wide max over
  /// the contended column times.  `num_rows` is the plan height (m_, or
  /// m_+1 when an appended row is being evaluated as slot m_).
  [[nodiscard]] double column_max(std::size_t j, std::size_t slot,
                                  const RowView& row_override,
                                  std::size_t num_rows) const;

  const StaticEvaluator* eval_;
  std::size_t m_ = 0;
  std::size_t K_ = 0;
  std::size_t Kp_ = 0;  // K_ padded to the SIMD lane multiple (row stride)
  std::vector<std::size_t> model_index_;  // slot -> model table index

  // Flat SoA cell grid, slot-major with stride Kp_: cell (slot i, stage k)
  // lives at i * Kp_ + k; entries k >= K_ are zero padding so row-wide
  // vector kernels (the DES lower bound) never read garbage.  Column j's
  // members sit at (j-k)*Kp_ + k for ascending k — a fixed stride, so the
  // whole column spans one K_×Kp_ block of each array instead of K_
  // separately-allocated AoS rows.
  std::vector<double> cell_solo_;
  std::vector<double> cell_intensity_;
  std::vector<double> cell_sensitivity_;
  std::vector<std::uint8_t> cell_active_;

  std::vector<double> colmax_;            // [m+K-1] contended column maxima
  std::vector<double> proc_solo_;         // [Kp_] solo work per processor (0-padded)
  double base_score_ = 0.0;
};

/// Static makespan of a fork/join slice window — the DAG analogue of the
/// Def.-3 wavefront column sum, used by the graph planner to rank branch
/// offload candidates before paying for a DES scoring.
///
/// Slices are levelized by longest-path depth over their `deps` edges
/// (which must index into `slices` itself, i.e. the window is
/// self-contained).  A level's members co-run: each member is dilated by
/// the contention model against the level's members on *other* processors,
/// members sharing a processor serialize, and the level takes the slowest
/// processor's total.  Levels execute back-to-back, so the result is the
/// sum of level times — an upper-bound-flavoured surrogate (the DES lets
/// levels overlap) that preserves the ranking the greedy pass needs and is
/// exact for a chain window, where it reduces to the sum of slice times.
double fork_join_wavefront_ms(const ContentionModel& contention,
                              std::span<const exec::ScheduledSlice> slices,
                              bool with_contention = true);

}  // namespace h2p
