#pragma once

#include <cstddef>
#include <vector>

#include "core/bubbles.h"
#include "core/planner.h"
#include "exec/compiled_plan.h"
#include "models/graph.h"

namespace h2p {

class ThreadPool;

/// Graph-native planner output: the fork/join compiled plan plus the chain
/// artifacts it was arbitrated against.
struct GraphPlannerReport {
  /// The accepted plan.  When the DAG candidate lost (or every input was a
  /// chain) this is exactly the legacy pipeline lowering — byte-identical
  /// to `exec::compile(chain_report.plan, evaluator())`.
  exec::CompiledPlan compiled;

  /// The legacy two-step planner's report on the linearized models (always
  /// produced; the DAG path starts from it).
  PlannerReport chain_report;

  /// True when the fork/join candidate beat (or tied) the chain plan under
  /// the DES and `compiled` carries real fork/join edges.
  bool dag_accepted = false;

  /// Slots that were re-sliced at articulation points in the accepted plan
  /// (empty when `dag_accepted` is false).
  std::vector<std::size_t> dag_slots;

  /// Branch subgraphs running on a processor other than their segment's
  /// home stage in the accepted plan.
  std::size_t offloaded_branches = 0;

  double chain_des_ms = 0.0;  // DES makespan of the chain lowering
  double final_des_ms = 0.0;  // DES makespan of `compiled`
};

/// DAG-aware front end to the Hetero2Pipe planner: takes `GraphModel`s as
/// the first-class input, plans their linearizations with the legacy
/// two-step planner, then — for every genuinely branchy model — builds a
/// fork/join candidate: the slot is re-sliced with Algorithm 1 restricted
/// to articulation-point boundaries (`partition_minmax_restricted`), and
/// within each slice the segment branches are offloaded to their
/// best-affinity processors when the static fork/join wavefront score says
/// the parallel layout beats serializing them on the home stage.  The
/// candidate is arbitrated against the chain plan with one whole-window
/// discrete-event evaluation and accepted only when not worse, so:
///
///  * a window of pure chains plans BYTE-IDENTICALLY to the legacy
///    `Model` path (the candidate stage never runs), and
///  * a branchy model can hold ≥ 2 of its own slices on different
///    processors at the same simulated time — the intra-model parallelism
///    a linearization cannot express.
class GraphPlanner {
 public:
  GraphPlanner(const Soc& soc, std::vector<const GraphModel*> graphs,
               PlannerOptions opts = {}, ThreadPool* pool = nullptr);

  [[nodiscard]] GraphPlannerReport plan() const;

  /// The evaluator over the linearized models (slice cost tables; shared
  /// with the chain planner).  Layer index i of slot s's table is the node
  /// at topological position i of graph s.
  [[nodiscard]] const StaticEvaluator& evaluator() const { return eval_; }
  [[nodiscard]] std::size_t num_graphs() const { return graphs_.size(); }
  [[nodiscard]] const GraphModel& graph(std::size_t i) const { return *graphs_[i]; }

 private:
  std::vector<const GraphModel*> graphs_;
  std::vector<Model> linearized_;        // owned chain views, topological order
  std::vector<const Model*> model_ptrs_; // into linearized_
  PlannerOptions opts_;
  ThreadPool* pool_ = nullptr;
  StaticEvaluator eval_;
  Hetero2PipePlanner chain_planner_;
};

}  // namespace h2p
