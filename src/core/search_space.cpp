#include "core/search_space.h"

#include <algorithm>

namespace h2p {

double binomial(std::size_t n, std::size_t k) {
  if (k > n) return 0.0;
  k = std::min(k, n - k);
  double result = 1.0;
  for (std::size_t i = 1; i <= k; ++i) {
    result *= static_cast<double>(n - k + i);
    result /= static_cast<double>(i);
  }
  return result;
}

namespace {

/// D_b / D_s of Eq. 13: contiguous compositions of `cores` into `stages`
/// groups (stars and bars).
double compositions(std::size_t cores, std::size_t stages) {
  if (stages == 0 || stages > cores) return 0.0;
  return binomial(cores - 1, stages - 1);
}

}  // namespace

double count_processor_pipelines(std::size_t cpu_cores, std::size_t big_cores,
                                 std::size_t depth) {
  // Eq. 12, read literally: for every split of the CPU stages into P_b big
  // and P_s small stages, each (D_b, D_s) core-composition pair contributes
  //   4 * D_b * D_s  — both clusters active, 4 attachments of {GPU, NPU}
  //                    (none / GPU / NPU / both) around the CPU chain, and
  //   3 * D_b + 3 * D_s — bookkeeping for the single-cluster chains that
  //                    this (P_b, P_s) pair also enables with an accelerator.
  // The trailing "+1" (GPU+NPU-only pipeline) is added once in the total.
  //
  // Depth accounting: the CPU chain itself has P' = P - 2 stages after
  // reserving the GPU and NPU stages, per the paper.
  if (depth < 2) return 0.0;
  const std::size_t small_cores = cpu_cores - big_cores;
  const std::size_t p_cpu = depth - 2;
  if (p_cpu == 0) return 1.0;  // the GPU + NPU pipeline

  double total = 0.0;
  for (std::size_t p_b = 1; p_b < p_cpu; ++p_b) {
    const std::size_t p_s = p_cpu - p_b;
    const double d_b = compositions(big_cores, p_b);
    const double d_s = compositions(small_cores, p_s);
    if (d_b > 0.0 && d_s > 0.0) {
      total += 4.0 * d_b * d_s + 3.0 * d_b + 3.0 * d_s;
    }
  }
  return total;
}

double count_total_pipelines(std::size_t cpu_cores, std::size_t big_cores) {
  // Closed form of the paper's Appendix-A example (449 for 8 cores, 4 big):
  // sum the Eq.-12 terms over every (P_b, P_s) pair with both clusters used,
  // plus the lone GPU+NPU pipeline.
  const std::size_t small_cores = cpu_cores - big_cores;
  double total = 1.0;  // GPU + NPU only
  for (std::size_t p_b = 1; p_b <= big_cores; ++p_b) {
    for (std::size_t p_s = 1; p_s <= small_cores; ++p_s) {
      const double d_b = compositions(big_cores, p_b);
      const double d_s = compositions(small_cores, p_s);
      total += 4.0 * d_b * d_s + 3.0 * d_b + 3.0 * d_s;
    }
  }
  return total;
}

double count_split_points(std::size_t num_layers, std::size_t cpu_cores,
                          std::size_t big_cores) {
  // Eq. 14: sum over pipeline depth of (layer split choices) x (processor
  // pipelines at that depth).  Depth for a (P_b, P_s) pair with both
  // accelerators attached is P_b + P_s + 2.
  if (num_layers == 0) return 0.0;
  return count_split_points_restricted(num_layers - 1, cpu_cores, big_cores);
}

double count_split_points_restricted(std::size_t num_interior_boundaries,
                                     std::size_t cpu_cores,
                                     std::size_t big_cores) {
  const std::size_t B = num_interior_boundaries;
  const std::size_t small_cores = cpu_cores - big_cores;
  // GPU + NPU only: depth 2, one cut chosen among the legal positions.
  double total = binomial(B, 1);
  for (std::size_t p_b = 1; p_b <= big_cores; ++p_b) {
    for (std::size_t p_s = 1; p_s <= small_cores; ++p_s) {
      const double d_b = compositions(big_cores, p_b);
      const double d_s = compositions(small_cores, p_s);
      const std::size_t depth_both = p_b + p_s + 2;
      const std::size_t depth_single = p_b + p_s + 1;
      total += 4.0 * d_b * d_s * binomial(B, depth_both - 1);
      total += 3.0 * (d_b + d_s) * binomial(B, depth_single - 1);
    }
  }
  return total;
}

}  // namespace h2p
