// Warm-start replanning: Hetero2PipePlanner::plan_warm.
//
// A near-miss plan-cache entry (same SoC, same knobs, model multiset within
// one add/remove/substitute — exec::PlanCache::find_near) already paid for
// the expensive parts of planning its window: the Algorithm-1 DPs, the
// mitigation ordering, and the DES-scored alignment.  For the window that
// almost repeats it, replanning from scratch re-derives nearly all of that.
// plan_warm instead inherits the seed's boundaries and order, DP-slices only
// the one model the window adds, places it into the removed model's slot
// (Def.-4 permitting), auditions its slicing with the incremental static
// scorer, and settles the final plan with two discrete-event evaluations —
// against the hundreds of DES *scorings* inside the cold planner's
// alignment and tail candidate loops, which is where cold spends its time.
#include <algorithm>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "contention/classifier.h"
#include "core/incremental.h"
#include "core/mitigation.h"
#include "core/partition.h"
#include "core/planner.h"
#include "core/work_stealing.h"
#include "exec/compiled_plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/pipeline_sim.h"

namespace h2p {
namespace {

/// optimize_tail's candidate set for one slot — the K single-processor
/// collapses — scored incrementally and accepted only on strict improvement,
/// with the same ascending-collapse tie-breaking.
bool audition_collapses(IncrementalStaticScorer& inc, PipelinePlan& plan,
                        const StaticEvaluator& eval, std::size_t slot) {
  const std::size_t K = plan.num_stages;
  const std::size_t n = eval.model(plan.models[slot].model_index).num_layers();
  std::vector<Slice> collapsed(K);
  double best = inc.base_score();
  int accepted = -1;
  for (std::size_t s = 0; s < K; ++s) {
    std::fill(collapsed.begin(), collapsed.end(), Slice{0, 0});
    collapsed[s] = Slice{0, n};
    const std::vector<Slice>& cur = plan.models[slot].slices;
    if (std::equal(collapsed.begin(), collapsed.end(), cur.begin(), cur.end())) {
      continue;
    }
    const double score = inc.score_with(slot, collapsed);
    if (score + 1e-9 < best) {
      best = score;
      accepted = static_cast<int>(s);
    }
  }
  if (accepted < 0) return false;
  std::fill(plan.models[slot].slices.begin(), plan.models[slot].slices.end(),
            Slice{0, 0});
  plan.models[slot].slices[static_cast<std::size_t>(accepted)] = Slice{0, n};
  inc.apply(slot, plan.models[slot].slices);
  return true;
}

}  // namespace

std::optional<PlannerReport> Hetero2PipePlanner::plan_warm(
    const exec::CompiledPlan& seed) const {
  static obs::Counter& warm_plans =
      obs::Registry::global().counter("planner.warm_plans");
  static obs::Histogram& warm_ms =
      obs::Registry::global().histogram("planner.warm_ms");
  warm_plans.inc();
  const obs::ScopedLatency latency(warm_ms);
  obs::Span span("planner.plan_warm");
  span.arg("models", static_cast<double>(eval_->num_models()));

  const std::size_t K =
      opts_.num_stages ? opts_.num_stages : eval_->soc().num_processors();
  if (seed.num_stages != K) return std::nullopt;
  // A DAG plan can occupy one (slot, proc) cell per slice and still carry
  // fork/join edges the grid round-trip would silently drop — refuse those
  // seeds up front, not just the cooperative duplicates to_pipeline_plan
  // throws on.
  if (!seed.chain_precedence()) return std::nullopt;

  PipelinePlan seed_plan;
  try {
    seed_plan = exec::to_pipeline_plan(seed);
  } catch (const std::exception&) {
    return std::nullopt;  // cooperative (non-grid) schedule; cannot seed
  }

  // Match seed slots to this window's models by name, multiset-wise:
  // duplicates pair up in (slot order, evaluator order).
  const std::size_t m = eval_->num_models();
  std::unordered_map<std::string, std::deque<std::size_t>> free_by_name;
  for (std::size_t i = 0; i < m; ++i) {
    free_by_name[eval_->model(i).name()].push_back(i);
  }
  std::vector<std::size_t> slot_match(seed.num_models, m);  // m = unmatched
  std::size_t removed = 0;
  for (std::size_t slot = 0; slot < seed.num_models; ++slot) {
    auto& queue = free_by_name[seed.model_names[slot]];
    if (queue.empty()) {
      ++removed;
      continue;
    }
    slot_match[slot] = queue.front();
    queue.pop_front();
  }
  std::vector<std::size_t> added;
  for (const auto& [name, queue] : free_by_name) {
    for (const std::size_t idx : queue) added.push_back(idx);
  }
  std::sort(added.begin(), added.end());
  if (removed > 1 || added.size() > 1) return std::nullopt;  // not a near miss

  // Inherit the seed's boundaries and order for every matched model.
  PipelinePlan plan;
  plan.num_stages = K;
  plan.models.reserve(m);
  std::size_t removed_slot = seed.num_models;  // position in the new plan
  for (std::size_t slot = 0; slot < seed.num_models; ++slot) {
    if (slot_match[slot] == m) {  // the removed model's slot
      removed_slot = plan.models.size();
      continue;
    }
    ModelPlan mp = seed_plan.models[slot];
    mp.model_index = slot_match[slot];
    if (!mp.covers(eval_->model(mp.model_index).num_layers())) {
      return std::nullopt;  // same name, different architecture
    }
    plan.models.push_back(std::move(mp));
  }

  // Warm mitigation: labels are re-fit on this window's intensities (the
  // classifier threshold is a percentile of the *window*), the inherited
  // order keeps the seed's mitigation, and the added model is placed by the
  // Def.-4 rule directly instead of re-running the LAP.
  std::vector<double> intensities;
  intensities.reserve(m);
  for (std::size_t i = 0; i < m; ++i) intensities.push_back(eval_->model_intensity(i));
  ContentionClassifier classifier(opts_.classifier_percentile);
  classifier.fit(intensities);
  std::vector<bool> high;
  high.reserve(m);
  for (const double v : intensities) high.push_back(classifier.is_high(v));
  for (ModelPlan& mp : plan.models) mp.high_contention = high[mp.model_index];

  const bool polish = opts_.work_stealing || opts_.tail_optimization;
  IncrementalStaticScorer inc(*eval_, plan);
  if (!added.empty()) {
    const std::size_t idx = added.front();
    const PartitionResult part = partition_model(eval_->table(idx), K);
    ModelPlan fresh;
    fresh.model_index = idx;
    fresh.slices = part.slices;
    fresh.high_contention = high[idx];

    // Placement: a substitution takes the removed model's slot, keeping the
    // seed's mitigated order structure intact; a pure addition appends.  If
    // that position puts an H model inside another H's contention window
    // (Def. 4), fall back to the latest feasible position — appending as
    // the paper's "no sufficient L" residual case when none is.
    std::size_t pos =
        removed_slot <= plan.models.size() ? removed_slot : plan.models.size();
    if (opts_.contention_mitigation && fresh.high_contention) {
      std::vector<bool> labels;
      for (const ModelPlan& mp : plan.models) labels.push_back(mp.high_contention);
      const auto feasible_at = [&](std::size_t p) {
        std::vector<bool> candidate = labels;
        candidate.insert(candidate.begin() + static_cast<std::ptrdiff_t>(p), true);
        return !has_window_violation(candidate, K);
      };
      if (!feasible_at(pos)) {
        pos = plan.models.size();
        for (std::size_t back = 0; back <= labels.size(); ++back) {
          const std::size_t p = labels.size() - back;
          if (feasible_at(p)) {
            pos = p;
            break;
          }
        }
      }
    }
    if (pos == plan.models.size()) {
      // Appending keeps the scorer's cached columns valid: audition the DP
      // slicing against the K single-processor collapses with O(K²) work
      // per candidate before committing the row.
      double best = inc.score_appended(idx, fresh.slices);
      std::vector<Slice> collapsed(K);
      const std::size_t n = eval_->model(idx).num_layers();
      for (std::size_t s = 0; polish && s < K; ++s) {
        std::fill(collapsed.begin(), collapsed.end(), Slice{0, 0});
        collapsed[s] = Slice{0, n};
        if (std::equal(collapsed.begin(), collapsed.end(), fresh.slices.begin(),
                       fresh.slices.end())) {
          continue;
        }
        const double score = inc.score_appended(idx, collapsed);
        if (score + 1e-9 < best) {
          best = score;
          fresh.slices = collapsed;
        }
      }
      inc.apply_appended(idx, fresh.slices);
      plan.models.push_back(std::move(fresh));
    } else {
      // Interior insertion shifts every later wavefront column; rebuild the
      // scorer once and audition through the ordinary single-row path.
      plan.models.insert(plan.models.begin() + static_cast<std::ptrdiff_t>(pos),
                         std::move(fresh));
      inc = IncrementalStaticScorer(*eval_, plan);
      if (polish) audition_collapses(inc, plan, *eval_, pos);
    }
  }

  // Final polish.  The inherited boundaries were DES-aligned for a window
  // one model away, so they are already near-good; a full static
  // re-alignment sometimes helps and sometimes hurts (the static wavefront
  // objective undervalues whole-model parallelism).  Build the statically
  // re-aligned candidate and let the discrete-event simulator arbitrate —
  // two DES *evaluations* total, against the hundreds a cold plan spends
  // scoring candidates inside its alignment and tail loops.
  int layers_stolen = 0;
  if (polish && !plan.models.empty()) {
    const PlanScorer des = [this](const PipelinePlan& p) {
      double score = simulate_plan_makespan(p, *eval_);  // thread-local SoA path
      if (!eval_->satisfies_memory(p)) score *= 1.5;  // constraint (6)
      return score;
    };
    // Two candidates, one DES evaluation each: keep the inherited
    // boundaries, or statically re-align them (greedy stealing + the
    // incremental tail sweep — cheap, but its wavefront objective
    // undervalues whole-model parallelism, so it must not win unarbitrated).
    if (opts_.work_stealing) {
      PipelinePlan aligned = plan;
      WorkStealingOptions ws;
      ws.tail_optimization = opts_.tail_optimization;
      const int moves = vertical_align(aligned, *eval_, ws, /*scorer=*/{}, nullptr);
      if (des(aligned) + 1e-9 < des(plan)) {
        plan = std::move(aligned);
        layers_stolen = moves;
      }
    }
    // One DES-scored tail sweep on the winner.  This is the only DES-in-
    // the-loop work warm does: ≤ m·K candidate scorings, most pruned by
    // the solo-work lower bound — against cold's two full DES-aligned
    // branches (alignment windows × tail sweeps, each DES-scored).
    if (opts_.tail_optimization) {
      optimize_tail(plan, *eval_, des, nullptr);
    }
  }

  PlannerReport report;
  report.static_makespan_ms = eval_->makespan_ms(plan, /*with_contention=*/true);
  report.static_bubble_ms = eval_->total_bubble_ms(plan, /*with_contention=*/true);
  report.memory_ok = eval_->satisfies_memory(plan);
  report.layers_stolen = layers_stolen;
  report.mitigation.high = std::move(high);
  for (const ModelPlan& mp : plan.models) {
    report.mitigation.order.push_back(mp.model_index);
  }
  {
    std::vector<bool> in_order;
    for (const ModelPlan& mp : plan.models) in_order.push_back(mp.high_contention);
    report.mitigation.fully_mitigated = !has_window_violation(in_order, K);
  }
  report.plan = std::move(plan);
  return report;
}

std::optional<PlannerReport> Hetero2PipePlanner::plan_degraded(
    const exec::CompiledPlan& seed,
    const std::vector<std::size_t>& kept_procs) const {
  static obs::Counter& degraded_plans =
      obs::Registry::global().counter("planner.degraded_plans");
  static obs::Histogram& degraded_ms =
      obs::Registry::global().histogram("planner.degraded_ms");
  degraded_plans.inc();
  const obs::ScopedLatency latency(degraded_ms);
  obs::Span span("planner.plan_degraded");
  span.arg("kept_procs", static_cast<double>(kept_procs.size()));

  const std::size_t K =
      opts_.num_stages ? opts_.num_stages : eval_->soc().num_processors();
  // seed.num_stages == K is the identity projection: every processor
  // survived but the environment moved (a degraded shared bus, a thermal
  // bucket change) and the boundaries re-settle against this evaluator's
  // cost tables.
  if (K == 0 || kept_procs.size() != K || seed.num_stages < K) {
    return std::nullopt;
  }
  for (std::size_t k = 0; k < K; ++k) {
    if (kept_procs[k] >= seed.num_stages) return std::nullopt;
    if (k > 0 && kept_procs[k] <= kept_procs[k - 1]) return std::nullopt;
  }
  // Same guard as plan_warm: fork/join seeds don't survive the grid
  // round-trip the stage projection below relies on.
  if (!seed.chain_precedence()) return std::nullopt;

  PipelinePlan seed_plan;
  try {
    seed_plan = exec::to_pipeline_plan(seed);
  } catch (const std::exception&) {
    return std::nullopt;  // cooperative (non-grid) schedule; cannot seed
  }

  // The window is unchanged — only the hardware shrank — so the model
  // multiset must match this evaluator's exactly.
  const std::size_t m = eval_->num_models();
  if (seed.num_models != m) return std::nullopt;
  std::unordered_map<std::string, std::deque<std::size_t>> free_by_name;
  for (std::size_t i = 0; i < m; ++i) {
    free_by_name[eval_->model(i).name()].push_back(i);
  }
  std::vector<std::size_t> slot_match(seed.num_models, m);
  for (std::size_t slot = 0; slot < seed.num_models; ++slot) {
    auto& queue = free_by_name[seed.model_names[slot]];
    if (queue.empty()) return std::nullopt;  // multiset mismatch
    slot_match[slot] = queue.front();
    queue.pop_front();
  }

  std::vector<bool> kept(seed.num_stages, false);
  for (const std::size_t p : kept_procs) kept[p] = true;

  // Project every model's slicing onto the surviving stages.  A model's
  // slices partition its layer chain in stage order, so a dropped stage's
  // range merges contiguously into the previous surviving stage's range —
  // or is carried forward into the first surviving stage when the drop
  // precedes every survivor.
  PipelinePlan plan;
  plan.num_stages = K;
  plan.models.reserve(m);
  for (std::size_t slot = 0; slot < seed.num_models; ++slot) {
    ModelPlan deg;
    deg.model_index = slot_match[slot];
    deg.slices.assign(K, Slice{0, 0});
    std::ptrdiff_t j = -1;        // degraded stage of the last kept healthy stage
    bool carry = false;           // dropped layers awaiting a home
    Slice carried{0, 0};
    for (std::size_t k = 0; k < seed.num_stages; ++k) {
      if (kept[k]) ++j;
      const Slice r = seed_plan.models[slot].slices[k];
      if (r.empty()) continue;
      if (kept[k]) {
        Slice& cell = deg.slices[static_cast<std::size_t>(j)];
        cell = r;
        if (carry) {
          cell.begin = std::min(cell.begin, carried.begin);
          cell.end = std::max(cell.end, carried.end);
          carry = false;
        }
      } else if (j >= 0) {
        Slice& cell = deg.slices[static_cast<std::size_t>(j)];
        if (cell.empty()) {
          cell = r;
        } else {
          cell.end = std::max(cell.end, r.end);
        }
      } else if (carry) {
        carried.begin = std::min(carried.begin, r.begin);
        carried.end = std::max(carried.end, r.end);
      } else {
        carry = true;
        carried = r;
      }
    }
    if (carry) {
      // Nothing survived after the carried range: give it to stage 0.
      Slice& cell = deg.slices.front();
      if (cell.empty()) {
        cell = carried;
      } else {
        cell.begin = std::min(cell.begin, carried.begin);
        cell.end = std::max(cell.end, carried.end);
      }
    }
    const std::size_t n = eval_->model(deg.model_index).num_layers();
    if (!deg.covers(n)) return std::nullopt;  // same name, different arch
    boundaries_to_slices(deg, slices_to_boundaries(deg, n));  // canonical form
    plan.models.push_back(std::move(deg));
  }

  // Labels are re-fit on the degraded evaluator's intensities (the cost
  // tables — and thus the classifier's percentile — see only survivors).
  std::vector<double> intensities;
  intensities.reserve(m);
  for (std::size_t i = 0; i < m; ++i) intensities.push_back(eval_->model_intensity(i));
  ContentionClassifier classifier(opts_.classifier_percentile);
  classifier.fit(intensities);
  std::vector<bool> high;
  high.reserve(m);
  for (const double v : intensities) high.push_back(classifier.is_high(v));
  for (ModelPlan& mp : plan.models) mp.high_contention = high[mp.model_index];

  // The merge concentrated the dropped stage's work onto one survivor, so
  // unlike plan_warm the static re-alignment is usually needed — but its
  // wavefront objective still mustn't win unarbitrated (see plan_warm).
  int layers_stolen = 0;
  const bool polish = opts_.work_stealing || opts_.tail_optimization;
  if (polish && !plan.models.empty()) {
    const PlanScorer des = [this](const PipelinePlan& p) {
      double score = simulate_plan_makespan(p, *eval_);  // thread-local SoA path
      if (!eval_->satisfies_memory(p)) score *= 1.5;  // constraint (6)
      return score;
    };
    if (opts_.work_stealing) {
      PipelinePlan aligned = plan;
      WorkStealingOptions ws;
      ws.tail_optimization = opts_.tail_optimization;
      const int moves = vertical_align(aligned, *eval_, ws, /*scorer=*/{}, nullptr);
      if (des(aligned) + 1e-9 < des(plan)) {
        plan = std::move(aligned);
        layers_stolen = moves;
      }
    }
    if (opts_.tail_optimization) {
      optimize_tail(plan, *eval_, des, nullptr);
    }
  }

  PlannerReport report;
  report.static_makespan_ms = eval_->makespan_ms(plan, /*with_contention=*/true);
  report.static_bubble_ms = eval_->total_bubble_ms(plan, /*with_contention=*/true);
  report.memory_ok = eval_->satisfies_memory(plan);
  report.layers_stolen = layers_stolen;
  report.mitigation.high = std::move(high);
  for (const ModelPlan& mp : plan.models) {
    report.mitigation.order.push_back(mp.model_index);
  }
  {
    std::vector<bool> in_order;
    for (const ModelPlan& mp : plan.models) in_order.push_back(mp.high_contention);
    report.mitigation.fully_mitigated = !has_window_violation(in_order, K);
  }
  report.plan = std::move(plan);
  return report;
}

}  // namespace h2p
