#include "core/lap.h"

#include <cassert>
#include <limits>
#include <stdexcept>

namespace h2p {

LapResult solve_lap(const std::vector<std::vector<double>>& cost) {
  LapResult result;
  const std::size_t n = cost.size();
  if (n == 0) return result;
  const std::size_t m = cost.front().size();
  if (m < n) throw std::invalid_argument("solve_lap: requires rows <= cols");
  for (const auto& row : cost) {
    if (row.size() != m) throw std::invalid_argument("solve_lap: ragged matrix");
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // 1-indexed potentials, standard shortest-augmenting-path formulation.
  std::vector<double> u(n + 1, 0.0), v(m + 1, 0.0);
  std::vector<int> match(m + 1, 0);  // match[col] = row occupying it
  std::vector<int> way(m + 1, 0);

  for (std::size_t r = 1; r <= n; ++r) {
    match[0] = static_cast<int>(r);
    std::size_t j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<char> used(m + 1, 0);
    do {
      used[j0] = 1;
      const std::size_t i0 = static_cast<std::size_t>(match[j0]);
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const double cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = static_cast<int>(j0);
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[static_cast<std::size_t>(match[j])] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (match[j0] != 0);
    do {
      const std::size_t j1 = static_cast<std::size_t>(way[j0]);
      match[j0] = match[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  result.row_to_col.assign(n, -1);
  for (std::size_t j = 1; j <= m; ++j) {
    if (match[j] == 0) continue;
    const std::size_t r = static_cast<std::size_t>(match[j]) - 1;
    const double c = cost[r][j - 1];
    if (c >= kLapForbidden * 0.5) {
      result.fully_feasible = false;
      continue;  // leave row unmatched rather than pay the sentinel
    }
    result.row_to_col[r] = static_cast<int>(j - 1);
    result.total_cost += c;
  }
  return result;
}

}  // namespace h2p
