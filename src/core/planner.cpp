#include "core/planner.h"

#include <algorithm>
#include <vector>

#include "contention/classifier.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/pipeline_sim.h"
#include "util/thread_pool.h"

namespace h2p {

PlannerReport Hetero2PipePlanner::plan() const {
  static obs::Counter& cold_plans =
      obs::Registry::global().counter("planner.cold_plans");
  static obs::Histogram& cold_ms =
      obs::Registry::global().histogram("planner.cold_ms");
  cold_plans.inc();
  const obs::ScopedLatency latency(cold_ms);
  obs::Span plan_span("planner.plan_cold");
  plan_span.arg("models", static_cast<double>(eval_->num_models()));

  PlannerReport report;
  const std::size_t K =
      opts_.num_stages ? opts_.num_stages : eval_->soc().num_processors();

  // Step 1 — horizontal: independent Algorithm-1 slicings.
  PipelinePlan pipeline = [&] {
    obs::Span span("planner.horizontal");
    return horizontal_plan(*eval_, K, pool_);
  }();

  // Step 2a — contention mitigation (Algorithm 2).
  MitigationResult mitigation;
  {
    obs::Span span("planner.mitigation");
    std::vector<double> intensities;
    intensities.reserve(eval_->num_models());
    for (std::size_t i = 0; i < eval_->num_models(); ++i) {
      intensities.push_back(eval_->model_intensity(i));
    }
    if (opts_.contention_mitigation) {
      mitigation =
          mitigate_contention(intensities, K, opts_.classifier_percentile);
    } else {
      mitigation.order.resize(eval_->num_models());
      for (std::size_t i = 0; i < mitigation.order.size(); ++i) mitigation.order[i] = i;
      ContentionClassifier classifier(opts_.classifier_percentile);
      classifier.fit(intensities);
      for (double v : intensities) mitigation.high.push_back(classifier.is_high(v));
    }
  }

  // Stamp H/L labels on the horizontal plans.
  for (ModelPlan& mp : pipeline.models) {
    mp.high_contention = mitigation.high[mp.model_index];
  }

  // Step 2b — vertical alignment by work stealing (Algorithm 3) + tail,
  // applied to the mitigated order.  The LAP reordering minimizes
  // displacement, not makespan, so the planner keeps whichever of
  // {original, mitigated} order evaluates better after alignment.
  // The local-search passes score candidates with the discrete-event
  // simulator: the static wavefront objective undervalues whole-model
  // parallelism (a collapsed model overlaps neighbouring columns in
  // reality), and the DES on a handful of tasks is cheap.
  const PlanScorer des_scorer = [this](const PipelinePlan& p) {
    // simulate_plan_makespan lowers straight into a thread-local SoA
    // TaskTable and reuses a thread-local SimScratch: allocation-free per
    // candidate after warm-up (the tail sweep scores hundreds per window).
    double score = simulate_plan_makespan(p, *eval_);
    // Constraint (6): a layout whose concurrent residents overflow free
    // memory would swap on a real device ("substantial performance
    // slowdown", §VI-D) — penalize it so the local search prefers
    // feasible layouts whenever one is reachable.
    if (!eval_->satisfies_memory(p)) score *= 1.5;
    return score;
  };

  auto finalize = [&](const std::vector<std::size_t>& order, int* moves) {
    PipelinePlan candidate;
    candidate.num_stages = K;
    candidate.models.reserve(pipeline.models.size());
    for (std::size_t slot = 0; slot < order.size(); ++slot) {
      candidate.models.push_back(pipeline.models[order[slot]]);
    }
    if (opts_.work_stealing) {
      WorkStealingOptions ws;
      ws.tail_optimization = opts_.tail_optimization;
      *moves = vertical_align(candidate, *eval_, ws, des_scorer, pool_);
    } else if (opts_.tail_optimization) {
      optimize_tail(candidate, *eval_, des_scorer, pool_);
    }
    return candidate;
  };

  // The mitigated-order and original-order branches are independent
  // alignments of private plan copies; fan them out when both are needed.
  // The comparison below reads them in a fixed order, so the pooled run
  // picks the same winner as the sequential one.
  const bool try_identity =
      opts_.contention_mitigation && mitigation.relocations > 0;
  std::vector<std::size_t> identity(pipeline.models.size());
  for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;

  PipelinePlan branch[2];
  int branch_moves[2] = {0, 0};
  parallel_for(pool_, try_identity ? 2 : 1, [&](std::size_t which) {
    branch[which] = finalize(which == 0 ? mitigation.order : identity,
                             &branch_moves[which]);
  });

  PipelinePlan best = std::move(branch[0]);
  report.layers_stolen = branch_moves[0];
  if (try_identity &&
      des_scorer(branch[1]) + 1e-9 < des_scorer(best)) {
    best = std::move(branch[1]);
    report.layers_stolen = branch_moves[1];
  }
  pipeline = std::move(best);

  report.static_makespan_ms = eval_->makespan_ms(pipeline, /*with_contention=*/true);
  report.static_bubble_ms = eval_->total_bubble_ms(pipeline, /*with_contention=*/true);
  report.memory_ok = eval_->satisfies_memory(pipeline);
  report.mitigation = std::move(mitigation);
  report.plan = std::move(pipeline);
  return report;
}

}  // namespace h2p
