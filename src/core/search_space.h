#pragma once

#include <cstddef>

namespace h2p {

/// Appendix-A search-space accounting (Eqs. 12-14).
///
/// A consumer SoC has C CPU cores (C_b big), one GPU and one NPU; the GPU
/// and NPU are indivisible.  `count_processor_pipelines` counts the feasible
/// processor-pipeline configurations S_P for one pipeline depth P, and
/// `count_total_pipelines` sums them over P (the paper's example: 449 for an
/// 8-core CPU + GPU + NPU, P in [2, 10]).

/// Binomial coefficient with the usual zero conventions; saturates instead
/// of overflowing.
double binomial(std::size_t n, std::size_t k);

/// S_P of Eq. 12: configurations at exactly P stages, with P' = P - 2 stages
/// shared between the big (C_b cores) and small (C - C_b cores) clusters.
double count_processor_pipelines(std::size_t cpu_cores, std::size_t big_cores,
                                 std::size_t depth);

/// Sum of S_P for P in [2, C + 2].
double count_total_pipelines(std::size_t cpu_cores, std::size_t big_cores);

/// Eq. 14 for a single model with n layers: sum over P of C(n-1, P-1) * S_P
/// — the number of distinct (split-point, processor-pipeline) choices.
double count_split_points(std::size_t num_layers, std::size_t cpu_cores,
                          std::size_t big_cores);

/// Eq. 14 generalized to a DAG sliced at articulation points: a chain of n
/// layers offers n-1 interior cut positions, but a graph only the
/// boundaries after its articulation nodes — pass that count (B) and the
/// C(n-1, P-1) factor becomes C(B, P-1).  `count_split_points(n, ...)` ==
/// `count_split_points_restricted(n - 1, ...)`.
double count_split_points_restricted(std::size_t num_interior_boundaries,
                                     std::size_t cpu_cores,
                                     std::size_t big_cores);

}  // namespace h2p
