#include "core/plan.h"

#include <sstream>

namespace h2p {

bool ModelPlan::covers(std::size_t num_layers) const {
  std::size_t cursor = 0;
  for (const Slice& s : slices) {
    if (s.empty()) continue;
    if (s.begin != cursor) return false;
    cursor = s.end;
  }
  return cursor == num_layers;
}

std::string PipelinePlan::to_string() const {
  std::ostringstream out;
  out << "PipelinePlan{K=" << num_stages << "}\n";
  for (std::size_t i = 0; i < models.size(); ++i) {
    const ModelPlan& mp = models[i];
    out << "  slot " << i << " <- request " << mp.model_index
        << (mp.high_contention ? " [H]" : " [L]") << " :";
    for (std::size_t k = 0; k < mp.slices.size(); ++k) {
      const Slice& s = mp.slices[k];
      if (s.empty()) {
        out << " -";
      } else {
        out << " [" << s.begin << "," << s.end << ")";
      }
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace h2p
