#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "contention/contention_model.h"
#include "core/plan.h"
#include "models/model.h"
#include "soc/cost_model.h"
#include "soc/soc.h"

namespace h2p {

class ThreadPool;

/// Static (planning-time) evaluation of a pipeline plan.
///
/// Owns the per-model cost tables and the contention model for one request
/// sequence on one Soc, and evaluates plans under the synchronous-wavefront
/// abstraction the paper's Def. 3 uses: in column j, the slices
/// { M_k^i : i + k = j } execute concurrently; the column takes as long as
/// its slowest member and every faster member idles (a pipeline bubble,
/// Eq. 3).  The discrete-event simulator (sim/) is the asynchronous ground
/// truth; this evaluator is what the planner itself optimizes against.
class StaticEvaluator {
 public:
  /// Cost tables are independent per model; with a `pool` their
  /// construction fans out (results land in model order, so the evaluator
  /// is identical to the sequentially built one).  Null pool = inline.
  StaticEvaluator(const Soc& soc, std::vector<const Model*> models,
                  ThreadPool* pool = nullptr);

  [[nodiscard]] const Soc& soc() const { return *soc_; }
  [[nodiscard]] std::size_t num_models() const { return models_.size(); }
  [[nodiscard]] const Model& model(std::size_t idx) const { return *models_[idx]; }
  [[nodiscard]] const CostTable& table(std::size_t idx) const { return tables_[idx]; }
  [[nodiscard]] const CostModel& cost_model() const { return cost_; }
  [[nodiscard]] const ContentionModel& contention() const { return contention_; }

  /// Dense coupling row for victim processor `p`, zero-padded to
  /// `padded_procs()` doubles (diagonal 0): the left operand of the
  /// fixed-order Eq. 2 dot product used by `stage_times` and the
  /// incremental scorer's column rescoring.
  [[nodiscard]] const double* coupling_row(std::size_t p) const {
    return coupling_rows_.data() + p * padded_procs_;
  }
  [[nodiscard]] std::size_t padded_procs() const { return padded_procs_; }

  /// Solo time of one stage of a model plan (exec + inbound copy; Eq. 2
  /// terms 1 + 2).  Empty slices cost zero.
  [[nodiscard]] double stage_solo_ms(const ModelPlan& mp, std::size_t k) const;

  /// Contention intensity / memory sensitivity of one stage's slice.
  [[nodiscard]] double stage_intensity(const ModelPlan& mp, std::size_t k) const;
  [[nodiscard]] double stage_sensitivity(const ModelPlan& mp, std::size_t k) const;

  /// Whole-model contention intensity measured on the CPU big cluster —
  /// the proxy the classifier thresholds on (§III).
  [[nodiscard]] double model_intensity(std::size_t idx) const;

  /// Stage-time grid times[slot][k], with the co-execution slowdown of each
  /// wavefront column applied when `with_contention`.
  [[nodiscard]] std::vector<std::vector<double>> stage_times(
      const PipelinePlan& plan, bool with_contention) const;

  /// Sum over wavefront columns of the column maximum — the static makespan.
  [[nodiscard]] double makespan_ms(const PipelinePlan& plan,
                                   bool with_contention = true) const;

  /// Eq. 3 summed over all columns: total idle time under the wavefront
  /// abstraction (includes the ramp-up head and drain tail).
  [[nodiscard]] double total_bubble_ms(const PipelinePlan& plan,
                                       bool with_contention = true) const;

  /// Resident bytes of one model while it is in flight (weights of all
  /// non-empty slices + its largest activation) — constraint (6).
  [[nodiscard]] double resident_bytes(const ModelPlan& mp) const;

  /// True if no wavefront column exceeds the Soc's available memory.
  [[nodiscard]] bool satisfies_memory(const PipelinePlan& plan) const;

 private:
  const Soc* soc_;
  std::vector<const Model*> models_;
  CostModel cost_;
  ContentionModel contention_;
  std::vector<CostTable> tables_;
  std::vector<double> model_intensity_;
  std::vector<double> coupling_rows_;  // P x padded_procs_, diagonal 0
  std::size_t padded_procs_ = 0;
};

/// Build the default horizontal plan: every model sliced by Algorithm 1 in
/// the original order (no reordering, no stealing).  The entry point the
/// planner, baselines and tests share.  The per-model DPs are independent;
/// a non-null `pool` fans them out with deterministic, index-ordered
/// collection (output identical to the sequential build).
PipelinePlan horizontal_plan(const StaticEvaluator& eval, std::size_t num_stages,
                             ThreadPool* pool = nullptr);

}  // namespace h2p
