#pragma once

#include <cstddef>
#include <functional>
#include <span>

#include "core/bubbles.h"
#include "core/plan.h"

namespace h2p {

/// Plan objective used by the local-search passes: lower is better.
/// Defaults to the static contention-aware makespan; the planner plugs in
/// the discrete-event simulator for higher-fidelity scoring.
using PlanScorer = std::function<double(const PipelinePlan&)>;

struct WorkStealingOptions {
  /// Run the tail-bubble local search after the sliding-window pass.
  bool tail_optimization = true;
  /// Cap on boundary moves per model alignment (safety valve; the greedy
  /// converges in O(n K) moves).
  std::size_t max_moves_per_model = 1024;
};

/// Re-partition one model so its stage-time profile approaches `target`
/// (the critical path's profile), by stealing layers across adjacent stage
/// boundaries — Algorithm 3's inner loop, minimizing the Eq. 11 distance
/// sum |T_k - T_k^{i_c}| greedily one layer at a time.
/// Returns the number of layers moved.
int align_to_profile(ModelPlan& mp, const StaticEvaluator& eval,
                     std::span<const double> target,
                     std::size_t max_moves = 1024);

/// Algorithm 3: slide a contention window of size K over the sequence; in
/// each window find the critical-path model and align every other member's
/// stages to it by work stealing.  Mutates the plan in place and returns
/// the total number of layer moves.
int vertical_align(PipelinePlan& plan, const StaticEvaluator& eval,
                   const WorkStealingOptions& opts = {},
                   const PlanScorer& scorer = {});

/// Tail-bubble optimization (§V-C phase 2): local search re-allocating
/// workloads, sweeping models tail-first and exhaustively trying the K
/// single-processor collapses for each (the search space is only K);
/// a candidate is kept only when `scorer` strictly improves.  Returns true
/// if the plan changed.
bool optimize_tail(PipelinePlan& plan, const StaticEvaluator& eval,
                   const PlanScorer& scorer = {});

}  // namespace h2p
