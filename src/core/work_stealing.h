#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "core/bubbles.h"
#include "core/plan.h"

namespace h2p {

class ThreadPool;

/// Plan objective used by the local-search passes: lower is better.
/// Defaults to the static contention-aware makespan; the planner plugs in
/// the discrete-event simulator for higher-fidelity scoring.  Scorers must
/// be pure (thread-safe const calls): candidate plans are scored
/// concurrently when a pool is supplied.
using PlanScorer = std::function<double(const PipelinePlan&)>;

struct WorkStealingOptions {
  /// Run the tail-bubble local search after the sliding-window pass.
  bool tail_optimization = true;
  /// Cap on boundary moves per model alignment (safety valve; the greedy
  /// converges in O(n K) moves).
  std::size_t max_moves_per_model = 1024;
};

/// slices -> boundary representation: b[0] = 0 <= b[1] <= ... <= b[K] = n,
/// stage k spanning [b[k], b[k+1]).  Empty slices (leading, trailing or
/// interior) collapse onto the previous boundary, yielding the canonical
/// form `boundaries_to_slices` reproduces.
std::vector<std::size_t> slices_to_boundaries(const ModelPlan& mp,
                                              std::size_t num_layers);

/// Inverse of `slices_to_boundaries`: rewrite mp's slices from boundaries.
void boundaries_to_slices(ModelPlan& mp, const std::vector<std::size_t>& b);

/// Re-partition one model so its stage-time profile approaches `target`
/// (the critical path's profile), by stealing layers across adjacent stage
/// boundaries — Algorithm 3's inner loop, minimizing the Eq. 11 distance
/// sum |T_k - T_k^{i_c}| greedily one layer at a time.  A boundary shift at
/// k only changes stages k-1 and k, so candidates are evaluated via those
/// two stages' solo-time delta — no plan copies, no allocation per probe.
/// Returns the number of layers moved.
int align_to_profile(ModelPlan& mp, const StaticEvaluator& eval,
                     std::span<const double> target,
                     std::size_t max_moves = 1024);

/// Algorithm 3: slide a contention window of size K over the sequence; in
/// each window find the critical-path model and align every other member's
/// stages to it by work stealing.  Mutates the plan in place and returns
/// the total number of layer moves.  `pool` parallelizes the tail pass's
/// candidate scoring (deterministic; see optimize_tail).
int vertical_align(PipelinePlan& plan, const StaticEvaluator& eval,
                   const WorkStealingOptions& opts = {},
                   const PlanScorer& scorer = {}, ThreadPool* pool = nullptr);

/// Tail-bubble optimization (§V-C phase 2): local search re-allocating
/// workloads, sweeping models tail-first and exhaustively trying the K
/// single-processor collapses for each (the search space is only K);
/// a candidate is kept only when `scorer` strictly improves.  Returns true
/// if the plan changed.
///
/// Scoring is incremental: with the default (static) scorer each candidate
/// re-evaluates only its affected wavefront columns; with a custom (DES)
/// scorer, candidates are first pruned by a per-processor solo-work lower
/// bound that can never exclude an acceptable candidate, and the survivors
/// are scored by value — concurrently when `pool` is non-null.  Candidate
/// acceptance always reduces in ascending collapse order with the original
/// tie-breaking, so pooled and sequential runs emit bit-identical plans.
bool optimize_tail(PipelinePlan& plan, const StaticEvaluator& eval,
                   const PlanScorer& scorer = {}, ThreadPool* pool = nullptr);

}  // namespace h2p
