#include "core/mitigation.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "contention/classifier.h"
#include "core/lap.h"

namespace h2p {
namespace {

std::vector<bool> labels_in_order(const std::vector<bool>& high,
                                  const std::vector<std::size_t>& order) {
  std::vector<bool> labels(order.size());
  for (std::size_t p = 0; p < order.size(); ++p) labels[p] = high[order[p]];
  return labels;
}

/// A pair of consecutive H positions closer than K (a "hot gap"): Property 3
/// says it needs K - d low-contention requests inserted between them.
struct HotGap {
  std::size_t left = 0;
  std::size_t right = 0;
  [[nodiscard]] std::size_t deficiency(std::size_t K) const {
    const std::size_t d = right - left;
    return d < K ? K - d : 0;
  }
};

std::vector<HotGap> hot_gaps(const std::vector<bool>& labels, std::size_t K) {
  std::vector<std::size_t> hs;
  for (std::size_t p = 0; p < labels.size(); ++p) {
    if (labels[p]) hs.push_back(p);
  }
  std::vector<HotGap> gaps;
  for (std::size_t a = 1; a < hs.size(); ++a) {
    if (hs[a] - hs[a - 1] < K) gaps.push_back({hs[a - 1], hs[a]});
  }
  return gaps;
}

/// Total Property-3 deficiency: sum over consecutive H pairs of the number
/// of L insertions still required.  Zero iff no window violation remains.
std::size_t total_deficiency(const std::vector<bool>& labels, std::size_t K) {
  std::size_t total = 0;
  for (const HotGap& g : hot_gaps(labels, K)) total += g.deficiency(K);
  return total;
}

/// Relocate the element at position `from` to sit just before position `to`
/// (list removal + reinsertion, everything in between shifts by one).
void relocate(std::vector<std::size_t>& order, std::size_t from, std::size_t to) {
  if (from == to) return;
  const std::size_t value = order[from];
  order.erase(order.begin() + static_cast<std::ptrdiff_t>(from));
  if (to > from) --to;
  order.insert(order.begin() + static_cast<std::ptrdiff_t>(to), value);
}

}  // namespace

bool has_window_violation(const std::vector<bool>& labels, std::size_t K) {
  std::size_t last_h = labels.size();  // sentinel: none yet
  for (std::size_t p = 0; p < labels.size(); ++p) {
    if (!labels[p]) continue;
    if (last_h != labels.size() && p - last_h < K) return true;
    last_h = p;
  }
  return false;
}

std::vector<std::size_t> mitigate_order(const std::vector<bool>& high, std::size_t K,
                                        int* relocations, double* displacement_cost,
                                        bool* fully_mitigated) {
  const std::size_t n = high.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  int moves = 0;
  double total_cost = 0.0;
  bool resolved = true;
  if (K <= 1 || n < 2) {
    if (relocations) *relocations = 0;
    if (displacement_cost) *displacement_cost = 0.0;
    if (fully_mitigated) *fully_mitigated = true;
    return order;
  }

  // Each accepted relocation strictly reduces the total Property-3
  // deficiency (checked explicitly), so K * n rounds always suffice.
  for (std::size_t round = 0; round < K * n + 1; ++round) {
    const std::vector<bool> labels = labels_in_order(high, order);
    const std::vector<HotGap> gaps = hot_gaps(labels, K);
    if (gaps.empty()) break;
    const std::size_t deficiency_before = total_deficiency(labels, K);

    std::vector<std::size_t> l_pos;
    for (std::size_t p = 0; p < n; ++p) {
      if (!labels[p]) l_pos.push_back(p);
    }
    if (l_pos.empty()) {
      resolved = false;
      break;
    }

    // P3: rows = hot gaps needing an L inserted between their H pair,
    // cols = candidate L donors.  Cost = displacement distance (Eq. 10);
    // a donor already sitting inside the gap cannot widen it (infinite
    // cost), matching the paper's in-window exclusion.  KM needs
    // rows <= cols; surplus gaps wait for the next round.
    std::vector<HotGap> rows(gaps);
    if (rows.size() > l_pos.size()) rows.resize(l_pos.size());

    std::vector<std::vector<double>> cost(rows.size(),
                                          std::vector<double>(l_pos.size()));
    for (std::size_t r = 0; r < rows.size(); ++r) {
      for (std::size_t c = 0; c < l_pos.size(); ++c) {
        const std::size_t i = l_pos[c];
        if (i > rows[r].left && i < rows[r].right) {
          cost[r][c] = kLapForbidden;
        } else {
          const std::size_t j = rows[r].right;  // insertion slot
          cost[r][c] = static_cast<double>((i > j) ? i - j : j - i);
        }
      }
    }

    const LapResult lap = solve_lap(cost);
    std::vector<std::pair<double, std::pair<std::size_t, std::size_t>>> inserts;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (lap.row_to_col[r] < 0) continue;
      const std::size_t i = l_pos[static_cast<std::size_t>(lap.row_to_col[r])];
      inserts.push_back(
          {cost[r][static_cast<std::size_t>(lap.row_to_col[r])], {i, rows[r].right}});
    }
    std::sort(inserts.begin(), inserts.end());

    // Apply cheapest-first; a relocation shifts everything between donor
    // and insertion point, so each one is accepted only if it strictly
    // reduces the global deficiency (this also rejects donors whose removal
    // would collapse another gap — Alg. 2's feasibility rule).
    bool any_applied = false;
    for (const auto& [c, move] : inserts) {
      const auto [from, to] = move;
      std::vector<std::size_t> trial = order;
      relocate(trial, from, to);
      if (total_deficiency(labels_in_order(high, trial), K) <
          total_deficiency(labels_in_order(high, order), K)) {
        order = std::move(trial);
        total_cost += c;
        ++moves;
        any_applied = true;
        break;  // positions are stale after a relocation: rebuild next round
      }
    }
    if (!any_applied) {
      resolved = false;  // Alg. 2's "no sufficient L" stop condition
      break;
    }
    (void)deficiency_before;
  }

  if (fully_mitigated) {
    *fully_mitigated = resolved && !has_window_violation(labels_in_order(high, order), K);
  }
  if (relocations) *relocations = moves;
  if (displacement_cost) *displacement_cost = total_cost;
  return order;
}

MitigationResult mitigate_contention(std::span<const double> intensities,
                                     std::size_t K, double classifier_percentile) {
  MitigationResult result;
  ContentionClassifier classifier(classifier_percentile);
  classifier.fit(intensities);
  result.high.reserve(intensities.size());
  for (double v : intensities) result.high.push_back(classifier.is_high(v));
  result.order = mitigate_order(result.high, K, &result.relocations,
                                &result.displacement_cost, &result.fully_mitigated);
  return result;
}

}  // namespace h2p
