#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/plan.h"
#include "soc/cost_model.h"

namespace h2p {

/// Cost oracle for horizontal partitioning: time of layers [i, j] (inclusive)
/// as pipeline stage k.  Must be non-negative and monotone in the range
/// (Property 2): widening a range never makes it cheaper.
using StageCostFn =
    std::function<double(std::size_t k, std::size_t i, std::size_t j)>;

struct PartitionResult {
  std::vector<Slice> slices;   // one per stage, tiling [0, n)
  double bottleneck_ms = 0.0;  // max stage cost (the P1 objective)
};

/// Algorithm 1 — horizontal model partitioning.
///
/// Finds boundaries 0 <= b_1 <= ... <= b_{K-1} <= n minimizing the maximum
/// stage cost, stage k spanning [b_k, b_{k+1}).  Empty stages are allowed
/// (a model can skip a processor).  Exploits Property-2 monotonicity via
/// parametric search: binary-search the bottleneck T and greedily test
/// feasibility in O(nK) per probe, exactly the prefix-sum + monotonicity
/// speed-up the paper describes (O(nK) vs the naive O(n^2 K)).
PartitionResult partition_minmax(const StageCostFn& cost, std::size_t num_layers,
                                 std::size_t num_stages);

/// Reference O(n^2 K) dynamic program over the same recurrence
/// (S*(j,k) = min_i max{S*(i-1,k-1), T_k(i,j)}); used to validate the
/// parametric solver in the property tests.
PartitionResult partition_minmax_reference(const StageCostFn& cost,
                                           std::size_t num_layers,
                                           std::size_t num_stages);

/// Algorithm 1 restricted to a legal boundary set — the DAG case, where a
/// sequential cut is only sound immediately after an articulation node (a
/// cut inside a fork would sever a live branch edge).  Stage boundaries are
/// chosen from `legal_boundaries` (positions in [0, n]; 0 and n are always
/// treated as legal, out-of-range entries ignored).  Implemented by
/// collapsing each inter-boundary run into one super-unit and running the
/// parametric solver on the collapsed chain, so monotone costs stay exact
/// and the probe costs O(B log B) per budget.  With all n-1 interior
/// boundaries legal this degenerates to `partition_minmax` bit-for-bit.
PartitionResult partition_minmax_restricted(
    const StageCostFn& cost, std::size_t num_layers, std::size_t num_stages,
    const std::vector<std::size_t>& legal_boundaries);

/// Convenience: partition one model over the Soc's processors using the
/// cost table's stage costs (exec + inbound boundary copy).
PartitionResult partition_model(const CostTable& table, std::size_t num_stages);

/// The stage-cost oracle `partition_model` uses (exposed for reuse by the
/// work-stealing pass and the baselines).
StageCostFn stage_cost_fn(const CostTable& table);

}  // namespace h2p
