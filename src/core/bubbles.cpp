#include "core/bubbles.h"

#include <algorithm>
#include <cassert>

#include <optional>

#include "core/partition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "soc/perf_counters.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace h2p {

StaticEvaluator::StaticEvaluator(const Soc& soc, std::vector<const Model*> models,
                                 ThreadPool* pool)
    : soc_(&soc), models_(std::move(models)), cost_(soc), contention_(soc) {
  static obs::Histogram& build_ms =
      obs::Registry::global().histogram("planner.cost_tables_ms");
  const obs::ScopedLatency latency(build_ms);
  obs::Span span("planner.cost_tables");
  span.arg("models", static_cast<double>(models_.size()));
  const std::size_t n = models_.size();
  const int cpu_b = soc.find(ProcKind::kCpuBig);
  const std::size_t intensity_proc = cpu_b >= 0 ? static_cast<std::size_t>(cpu_b) : 0;
  for ([[maybe_unused]] const Model* m : models_) assert(m != nullptr);

  // Each model's cost table and intensity are independent of the others —
  // the planner's first cold-path hot spot.  Build into index slots so the
  // pooled result is identical to the sequential one.
  std::vector<std::optional<CostTable>> built(n);
  std::vector<double> intensity(n, 0.0);
  parallel_for(pool, n, [&](std::size_t i) {
    built[i].emplace(*models_[i], cost_);
    intensity[i] = true_contention_intensity(*models_[i], intensity_proc, cost_);
  });

  tables_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) tables_.push_back(std::move(*built[i]));
  model_intensity_ = std::move(intensity);

  padded_procs_ = simd::padded_size(soc.num_processors());
  coupling_rows_.assign(soc.num_processors() * padded_procs_, 0.0);
  contention_.fill_coupling_rows(coupling_rows_, padded_procs_);
}

double StaticEvaluator::stage_solo_ms(const ModelPlan& mp, std::size_t k) const {
  const Slice& s = mp.slices[k];
  if (s.empty()) return 0.0;
  const CostTable& t = tables_[mp.model_index];
  double ms = t.exec_ms(k, s.begin, s.end - 1);
  if (s.begin > 0) ms += t.boundary_copy_ms(k, s.begin);
  return ms;
}

double StaticEvaluator::stage_intensity(const ModelPlan& mp, std::size_t k) const {
  const Slice& s = mp.slices[k];
  if (s.empty()) return 0.0;
  return tables_[mp.model_index].intensity(k, s.begin, s.end - 1);
}

double StaticEvaluator::stage_sensitivity(const ModelPlan& mp, std::size_t k) const {
  const Slice& s = mp.slices[k];
  if (s.empty()) return 0.0;
  return tables_[mp.model_index].mem_sensitivity(k, s.begin, s.end - 1);
}

double StaticEvaluator::model_intensity(std::size_t idx) const {
  return model_intensity_[idx];
}

std::vector<std::vector<double>> StaticEvaluator::stage_times(
    const PipelinePlan& plan, bool with_contention) const {
  const std::size_t m = plan.models.size();
  const std::size_t K = plan.num_stages;
  std::vector<std::vector<double>> times(m, std::vector<double>(K, 0.0));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t k = 0; k < K; ++k) {
      times[i][k] = stage_solo_ms(plan.models[i], k);
    }
  }
  if (!with_contention || m == 0) return times;

  // Apply co-execution slowdown column by column: column j holds the slices
  // { (i, k) : i + k = j } that the wavefront runs concurrently.  The
  // aggressor sum is the dense fixed-order Eq. 2 dot product (util/simd.h):
  // stage k == processor k, every member deposits its intensity at index k
  // of a zero-padded per-processor buffer, and a victim's own entry is
  // excluded by the coupling diagonal being zero — the exact reduction the
  // DES rate loop and the incremental scorer compute.
  assert(K <= soc_->num_processors());
  std::vector<std::pair<std::size_t, std::size_t>> members;  // (slot, stage)
  std::vector<double> col_intensity(padded_procs_, 0.0);
  for (std::size_t j = 0; j + 1 <= m + K - 1; ++j) {
    members.clear();
    std::fill(col_intensity.begin(), col_intensity.end(), 0.0);
    for (std::size_t k = 0; k < K; ++k) {
      if (j < k) continue;
      const std::size_t i = j - k;
      if (i >= m) continue;
      if (plan.models[i].slices[k].empty()) continue;
      members.emplace_back(i, k);
      col_intensity[k] = stage_intensity(plan.models[i], k);
    }
    if (members.size() < 2) continue;
    for (const auto& [i, k] : members) {
      const double extra =
          simd::fixed_dot(coupling_row(k), col_intensity.data(), padded_procs_);
      const double factor = ContentionModel::slowdown_from_extra(
          extra, stage_sensitivity(plan.models[i], k));
      times[i][k] *= factor;
    }
  }
  return times;
}

double StaticEvaluator::makespan_ms(const PipelinePlan& plan,
                                    bool with_contention) const {
  const auto times = stage_times(plan, with_contention);
  const std::size_t m = plan.models.size();
  const std::size_t K = plan.num_stages;
  if (m == 0) return 0.0;
  double total = 0.0;
  for (std::size_t j = 0; j + 1 <= m + K - 1; ++j) {
    double colmax = 0.0;
    for (std::size_t k = 0; k < K; ++k) {
      if (j < k) continue;
      const std::size_t i = j - k;
      if (i >= m) continue;
      colmax = std::max(colmax, times[i][k]);
    }
    total += colmax;
  }
  return total;
}

double StaticEvaluator::total_bubble_ms(const PipelinePlan& plan,
                                        bool with_contention) const {
  const auto times = stage_times(plan, with_contention);
  const std::size_t m = plan.models.size();
  const std::size_t K = plan.num_stages;
  if (m == 0) return 0.0;
  double bubbles = 0.0;
  for (std::size_t j = 0; j + 1 <= m + K - 1; ++j) {
    double colmax = 0.0;
    std::vector<double> col;
    // A column occupies every stage k in [0, K): stages with no slice (ramp
    // up / drain / empty slices) idle for the whole column (Eq. 3).
    for (std::size_t k = 0; k < K; ++k) {
      double t = 0.0;
      if (j >= k && j - k < m) t = times[j - k][k];
      col.push_back(t);
      colmax = std::max(colmax, t);
    }
    for (double t : col) bubbles += colmax - t;
  }
  return bubbles;
}

double StaticEvaluator::resident_bytes(const ModelPlan& mp) const {
  // Weights plus runtime workspace: MNN-style backends keep im2col/GEMM
  // scratch and rearranged weight copies alive, empirically ~1.8x the raw
  // weight bytes (this reproduces Fig 9's ~2 GB footprint for a 3-large-
  // model pipeline), plus the largest live activation.
  constexpr double kWorkspaceFactor = 1.8;
  const Model& m = model(mp.model_index);
  double bytes = 0.0;
  double peak_act = 0.0;
  for (const Slice& s : mp.slices) {
    if (s.empty()) continue;
    bytes += m.range_param_bytes(s.begin, s.end - 1);
    peak_act = std::max(peak_act, m.peak_activation_bytes(s.begin, s.end - 1));
  }
  return kWorkspaceFactor * bytes + peak_act;
}

bool StaticEvaluator::satisfies_memory(const PipelinePlan& plan) const {
  const std::size_t m = plan.models.size();
  const std::size_t K = plan.num_stages;
  // Constraint (6): every wavefront column's concurrent residents must fit.
  for (std::size_t j = 0; j + 1 <= m + K - 1; ++j) {
    double resident = 0.0;
    for (std::size_t k = 0; k < K; ++k) {
      if (j < k) continue;
      const std::size_t i = j - k;
      if (i >= m) continue;
      resident += resident_bytes(plan.models[i]);
    }
    if (resident > soc_->available_bytes()) return false;
  }
  return true;
}

PipelinePlan horizontal_plan(const StaticEvaluator& eval, std::size_t num_stages,
                             ThreadPool* pool) {
  PipelinePlan plan;
  plan.num_stages = num_stages;
  plan.models.resize(eval.num_models());
  parallel_for(pool, eval.num_models(), [&](std::size_t i) {
    plan.models[i].model_index = i;
    plan.models[i].slices = partition_model(eval.table(i), num_stages).slices;
  });
  return plan;
}

}  // namespace h2p
