#pragma once

#include <vector>

namespace h2p {

/// Sentinel cost for forbidden assignments (Eq. 10's infinite entries).
inline constexpr double kLapForbidden = 1e50;

struct LapResult {
  /// row_to_col[r] = assigned column for row r, or -1 when the row could
  /// only be matched through a forbidden edge.
  std::vector<int> row_to_col;
  double total_cost = 0.0;  // over feasible assignments only
  bool fully_feasible = true;
};

/// Kuhn–Munkres / Jonker-Volgenant style Linear Assignment solver (P3) in
/// O(n^2 m): shortest augmenting paths with dual potentials.  Requires
/// rows <= cols; every row gets matched (forbidden matches are reported as
/// -1 in the result rather than silently paying the sentinel).
LapResult solve_lap(const std::vector<std::vector<double>>& cost);

}  // namespace h2p
