#pragma once

#include "core/plan.h"
#include "sim/trace.h"
#include "soc/soc.h"
#include "util/json.h"

namespace h2p {

/// JSON round-tripping for the tooling surface (CLI, saved plans, custom
/// device descriptions).  Formats are stable and human-editable.

Json soc_to_json(const Soc& soc);
/// Parses a device description; throws std::runtime_error on missing or
/// ill-typed fields.
Soc soc_from_json(const Json& j);

Json plan_to_json(const PipelinePlan& plan);
PipelinePlan plan_from_json(const Json& j);

/// One-way: timelines are results, not inputs.
Json timeline_to_json(const Timeline& timeline);

}  // namespace h2p
