#pragma once

#include "core/plan.h"
#include "models/graph.h"
#include "obs/drift.h"
#include "sim/trace.h"
#include "soc/soc.h"
#include "util/json.h"

namespace h2p {

/// JSON round-tripping for the tooling surface (CLI, saved plans, custom
/// device descriptions).  Formats are stable and human-editable.

Json soc_to_json(const Soc& soc);
/// Parses a device description; throws std::runtime_error on missing or
/// ill-typed fields.
Soc soc_from_json(const Json& j);

Json plan_to_json(const PipelinePlan& plan);
PipelinePlan plan_from_json(const Json& j);

/// DAG model wire format: `{"name": ..., "nodes": [{"name", "kind",
/// "flops", "param_bytes", "input_bytes", "output_bytes",
/// "working_set_bytes", "locality", "inputs": [node indices]}, ...]}`.
/// Node order in the array is the node-id order; `inputs` reference earlier
/// array positions.  `graph_from_json` validates that the result is a DAG
/// and throws std::runtime_error on unknown layer kinds, out-of-range
/// inputs, or cycles.  Round-trip is exact: the reparsed graph has the same
/// `topology_hash()`.
Json graph_to_json(const GraphModel& graph);
GraphModel graph_from_json(const Json& j);

/// One-way: timelines are results, not inputs.
Json timeline_to_json(const Timeline& timeline);

/// Calibration scorecard wire format (schema tag "h2p.drift/v1"):
///   {"schema":"h2p.drift/v1","records":N,"skipped":N,"alerts":N,
///    "ewma_abs_rel_err":x,"mean_abs_rel_err":x,"min_samples":k,
///    "cells":[{"proc":p,"kind":"lead|interior|tail|solo",
///              "thermal_bucket":b,"count":n,
///              "sum_predicted_ms":x,"sum_executed_ms":x,
///              "sum_rel_err":x,"sum_abs_rel_err":x,"max_abs_rel_err":x,
///              "correction":r,"confidence":c,
///              "mean_rel_err":m,"mean_abs_rel_err":m}, ...]}
/// Sums are authoritative (they merge exactly across fleet snapshots);
/// correction/confidence/mean_* are derived conveniences recomputed on
/// parse.  `obs::merge_snapshots` consumes and emits this same shape.
Json calibration_report_to_json(const obs::CalibrationReport& report);
obs::CalibrationReport calibration_report_from_json(const Json& j);

}  // namespace h2p
