#include "core/incremental.h"

#include <algorithm>
#include <cassert>

#include "contention/contention_model.h"

namespace h2p {
namespace {

/// Candidate-row scratch shared by the const scoring entries.  score_with /
/// des_lower_bound_with run concurrently from pooled planning threads, so
/// the scratch is per-thread; capacities survive across calls, making the
/// steady-state candidate evaluation allocation-free.
struct RowScratch {
  ModelPlan probe;
};

RowScratch& tls_scratch() {
  thread_local RowScratch s;
  return s;
}

}  // namespace

IncrementalStaticScorer::IncrementalStaticScorer(const StaticEvaluator& eval,
                                                 const PipelinePlan& plan)
    : eval_(&eval), m_(plan.models.size()), K_(plan.num_stages) {
  model_index_.reserve(m_);
  for (const ModelPlan& mp : plan.models) model_index_.push_back(mp.model_index);

  cell_solo_.resize(m_ * K_);
  cell_intensity_.resize(m_ * K_);
  cell_sensitivity_.resize(m_ * K_);
  cell_active_.resize(m_ * K_);
  Row row;
  for (std::size_t i = 0; i < m_; ++i) {
    fill_row_for(model_index_[i], plan.models[i].slices, row);
    store_row(i, row);
  }

  proc_solo_.assign(K_, 0.0);
  for (std::size_t k = 0; k < K_; ++k) {
    for (std::size_t i = 0; i < m_; ++i) {
      proc_solo_[k] += cell_solo_[i * K_ + k];
    }
  }

  if (m_ == 0) return;
  const std::size_t num_cols = m_ + K_ - 1;
  colmax_.resize(num_cols);
  const Row no_override;
  for (std::size_t j = 0; j < num_cols; ++j) {
    // slot = m_ is out of range: every row comes from the cache.
    colmax_[j] = column_max(j, m_, no_override, m_);
  }
  base_score_ = 0.0;
  for (const double c : colmax_) base_score_ += c;
}

void IncrementalStaticScorer::fill_row_for(std::size_t model_index,
                                           std::span<const Slice> slices,
                                           Row& row) const {
  assert(slices.size() == K_);
  // Route through the evaluator's own accessors so the cached values are
  // the exact doubles the non-incremental scorer would see.  The probe plan
  // is thread-local: its slices vector keeps its capacity across calls.
  ModelPlan& probe = tls_scratch().probe;
  probe.model_index = model_index;
  probe.slices.assign(slices.begin(), slices.end());
  row.resize(K_);
  for (std::size_t k = 0; k < K_; ++k) {
    row.solo[k] = eval_->stage_solo_ms(probe, k);
    row.intensity[k] = eval_->stage_intensity(probe, k);
    row.sensitivity[k] = eval_->stage_sensitivity(probe, k);
    row.active[k] = probe.slices[k].empty() ? 0 : 1;
  }
}

void IncrementalStaticScorer::store_row(std::size_t slot, const Row& row) {
  const std::size_t base = slot * K_;
  for (std::size_t k = 0; k < K_; ++k) {
    cell_solo_[base + k] = row.solo[k];
    cell_intensity_[base + k] = row.intensity[k];
    cell_sensitivity_[base + k] = row.sensitivity[k];
    cell_active_[base + k] = row.active[k];
  }
}

double IncrementalStaticScorer::column_max(std::size_t j, std::size_t slot,
                                           const Row& row_override,
                                           std::size_t num_rows) const {
  // Mirrors StaticEvaluator::stage_times for one column: members gathered
  // in ascending-stage order, every non-victim member aggresses, then the
  // makespan loop's max over all valid cells.  K is small (the processor
  // count), so the member set lives in fixed-capacity thread-local buffers.
  struct Member {
    std::size_t k;
    double solo;
    double sensitivity;
  };
  thread_local std::vector<Member> members;
  thread_local std::vector<Aggressor> aggr;
  thread_local std::vector<Aggressor> others;
  members.clear();
  aggr.clear();
  members.reserve(K_);
  aggr.reserve(K_);
  for (std::size_t k = 0; k < K_; ++k) {
    if (j < k) continue;
    const std::size_t i = j - k;
    if (i >= num_rows) continue;
    double solo, intensity, sensitivity;
    bool active;
    if (i == slot) {
      solo = row_override.solo[k];
      intensity = row_override.intensity[k];
      sensitivity = row_override.sensitivity[k];
      active = row_override.active[k] != 0;
    } else {
      const std::size_t idx = i * K_ + k;
      solo = cell_solo_[idx];
      intensity = cell_intensity_[idx];
      sensitivity = cell_sensitivity_[idx];
      active = cell_active_[idx] != 0;
    }
    if (!active) continue;
    members.push_back(Member{k, solo, sensitivity});
    aggr.push_back(Aggressor{k, intensity});
  }

  double colmax = 0.0;
  if (members.size() < 2) {
    for (const Member& mem : members) colmax = std::max(colmax, mem.solo);
    return colmax;
  }
  const ContentionModel& contention = eval_->contention();
  others.clear();
  others.reserve(aggr.size() - 1);
  for (std::size_t idx = 0; idx < members.size(); ++idx) {
    others.clear();
    for (std::size_t a = 0; a < aggr.size(); ++a) {
      if (a != idx) others.push_back(aggr[a]);
    }
    const double factor = contention.slowdown(
        members[idx].k, members[idx].sensitivity, others);
    colmax = std::max(colmax, members[idx].solo * factor);
  }
  return colmax;
}

double IncrementalStaticScorer::score_with(std::size_t slot,
                                           std::span<const Slice> slices) const {
  if (m_ == 0) return 0.0;
  assert(slot < m_);
  thread_local Row row;
  fill_row_for(model_index_[slot], slices, row);

  const std::size_t num_cols = m_ + K_ - 1;
  const std::size_t lo = slot;
  const std::size_t hi = std::min(slot + K_, num_cols);  // exclusive
  double total = 0.0;
  // Full ascending column sum, exactly as makespan_ms performs it — only
  // the ≤ K affected columns are *recomputed*.
  for (std::size_t j = 0; j < num_cols; ++j) {
    total += (j >= lo && j < hi) ? column_max(j, slot, row, m_) : colmax_[j];
  }
  return total;
}

double IncrementalStaticScorer::score_appended(
    std::size_t model_index, std::span<const Slice> slices) const {
  thread_local Row row;
  fill_row_for(model_index, slices, row);
  // Columns j < m_ have no member from the appended row and keep their
  // cached maxima; columns [m_, m_+K-1] are recomputed with the new row
  // participating as slot m_ of an (m_+1)-row plan.
  double total = 0.0;
  for (std::size_t j = 0; j < m_; ++j) total += colmax_[j];
  for (std::size_t j = m_; j < m_ + K_; ++j) {
    total += column_max(j, m_, row, m_ + 1);
  }
  return total;
}

void IncrementalStaticScorer::apply_appended(std::size_t model_index,
                                             std::span<const Slice> slices) {
  Row row;
  fill_row_for(model_index, slices, row);
  for (std::size_t k = 0; k < K_; ++k) proc_solo_[k] += row.solo[k];
  model_index_.push_back(model_index);
  cell_solo_.resize((m_ + 1) * K_);
  cell_intensity_.resize((m_ + 1) * K_);
  cell_sensitivity_.resize((m_ + 1) * K_);
  cell_active_.resize((m_ + 1) * K_);
  store_row(m_, row);
  ++m_;

  colmax_.resize(m_ + K_ - 1);
  const Row no_override;
  for (std::size_t j = m_ - 1; j < m_ + K_ - 1; ++j) {
    colmax_[j] = column_max(j, m_, no_override, m_);
  }
  base_score_ = 0.0;
  for (const double c : colmax_) base_score_ += c;
}

double IncrementalStaticScorer::des_lower_bound_with(
    std::size_t slot, std::span<const Slice> slices) const {
  if (m_ == 0) return 0.0;
  assert(slot < m_);
  thread_local Row row;
  fill_row_for(model_index_[slot], slices, row);
  double bound = 0.0;
  for (std::size_t k = 0; k < K_; ++k) {
    bound = std::max(bound,
                     proc_solo_[k] - cell_solo_[slot * K_ + k] + row.solo[k]);
  }
  return bound;
}

void IncrementalStaticScorer::apply(std::size_t slot,
                                    std::span<const Slice> slices) {
  if (m_ == 0) return;
  assert(slot < m_);
  Row row;
  fill_row_for(model_index_[slot], slices, row);
  for (std::size_t k = 0; k < K_; ++k) {
    proc_solo_[k] += row.solo[k] - cell_solo_[slot * K_ + k];
  }
  store_row(slot, row);

  const std::size_t num_cols = m_ + K_ - 1;
  const std::size_t hi = std::min(slot + K_, num_cols);
  const Row no_override;
  for (std::size_t j = slot; j < hi; ++j) {
    colmax_[j] = column_max(j, m_, no_override, m_);
  }
  base_score_ = 0.0;
  for (const double c : colmax_) base_score_ += c;
}

double fork_join_wavefront_ms(const ContentionModel& contention,
                              std::span<const exec::ScheduledSlice> slices,
                              bool with_contention) {
  const std::size_t n = slices.size();
  if (n == 0) return 0.0;

  // Longest-path level per slice; deps always point at earlier entries
  // (slices arrive in a topological order), so one forward pass suffices.
  std::vector<std::size_t> level(n, 0);
  std::size_t num_levels = 1;
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::size_t d : slices[i].deps) {
      assert(d < i && "fork_join_wavefront_ms: window not self-contained");
      level[i] = std::max(level[i], level[d] + 1);
    }
    num_levels = std::max(num_levels, level[i] + 1);
  }

  std::vector<std::size_t> members;
  std::vector<Aggressor> others;
  double total = 0.0;
  for (std::size_t lv = 0; lv < num_levels; ++lv) {
    members.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (level[i] == lv) members.push_back(i);
    }
    // Per-processor serialized sum of the level's contended member times;
    // the level takes its slowest processor.
    double level_ms = 0.0;
    for (const std::size_t i : members) {
      double proc_ms = 0.0;
      for (const std::size_t j : members) {
        if (slices[j].proc_idx != slices[i].proc_idx) continue;
        double t = slices[j].solo_ms();
        if (with_contention) {
          others.clear();
          for (const std::size_t o : members) {
            if (slices[o].proc_idx == slices[j].proc_idx) continue;
            others.push_back(Aggressor{slices[o].proc_idx, slices[o].intensity});
          }
          t *= contention.slowdown(slices[j].proc_idx, slices[j].sensitivity,
                                   others);
        }
        proc_ms += t;
      }
      level_ms = std::max(level_ms, proc_ms);
    }
    total += level_ms;
  }
  return total;
}

}  // namespace h2p
