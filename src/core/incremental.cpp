#include "core/incremental.h"

#include <algorithm>
#include <cassert>

#include "contention/contention_model.h"
#include "util/arena.h"
#include "util/simd.h"

namespace h2p {
namespace {

/// Candidate-row scratch shared by the const scoring entries.  score_with /
/// des_lower_bound_with run concurrently from pooled planning threads, so
/// the scratch is per-thread.  All per-stage buffers are carved from one
/// monotonic arena sized on first use (re-carved only when a scorer with a
/// different geometry shows up), so the steady-state candidate evaluation
/// is allocation-free — including the tail sweep's rescore rows, which
/// previously grew via std::vector::resize mid-scoring.
struct ScorerWorkspace {
  ModelPlan probe;  // vector-backed by API; capacity survives across calls

  util::MonotonicArena arena;
  std::span<double> row_solo;
  std::span<double> row_intensity;
  std::span<double> row_sensitivity;
  std::span<std::uint8_t> row_active;
  std::span<double> col_intensity;  // [padded_procs] dense aggressor buffer
  std::span<double> col_times;      // [Kp] contended column times
  std::span<double> col_sens;       // [Kp] member sensitivities by stage
  std::span<double> lb_tmp;         // [Kp] lower-bound lane scratch
  std::size_t kp = 0;
  std::size_t pp = 0;

  void prepare(std::size_t Kp, std::size_t Pp) {
    if (kp == Kp && pp == Pp) return;
    arena.reset();
    arena.reserve(Kp * (6 * sizeof(double) + sizeof(std::uint8_t)) +
                  Pp * sizeof(double) +
                  9 * util::MonotonicArena::kAlignment);
    row_solo = arena.make_span<double>(Kp);
    row_intensity = arena.make_span<double>(Kp);
    row_sensitivity = arena.make_span<double>(Kp);
    row_active = arena.make_span<std::uint8_t>(Kp);
    col_intensity = arena.make_span<double>(Pp);
    col_times = arena.make_span<double>(Kp);
    col_sens = arena.make_span<double>(Kp);
    lb_tmp = arena.make_span<double>(Kp);
    kp = Kp;
    pp = Pp;
  }
};

ScorerWorkspace& tls_workspace() {
  thread_local ScorerWorkspace s;
  return s;
}

}  // namespace

IncrementalStaticScorer::IncrementalStaticScorer(const StaticEvaluator& eval,
                                                 const PipelinePlan& plan)
    : eval_(&eval),
      m_(plan.models.size()),
      K_(plan.num_stages),
      Kp_(simd::padded_size(plan.num_stages)) {
  assert(K_ <= eval.soc().num_processors());
  model_index_.reserve(m_);
  for (const ModelPlan& mp : plan.models) model_index_.push_back(mp.model_index);

  cell_solo_.assign(m_ * Kp_, 0.0);
  cell_intensity_.assign(m_ * Kp_, 0.0);
  cell_sensitivity_.assign(m_ * Kp_, 0.0);
  cell_active_.assign(m_ * Kp_, 0);
  for (std::size_t i = 0; i < m_; ++i) {
    store_row(i, fill_row(model_index_[i], plan.models[i].slices));
  }

  proc_solo_.assign(Kp_, 0.0);
  for (std::size_t k = 0; k < K_; ++k) {
    for (std::size_t i = 0; i < m_; ++i) {
      proc_solo_[k] += cell_solo_[i * Kp_ + k];
    }
  }

  if (m_ == 0) return;
  const std::size_t num_cols = m_ + K_ - 1;
  colmax_.resize(num_cols);
  const RowView no_override;
  for (std::size_t j = 0; j < num_cols; ++j) {
    // slot = m_ is out of range: every row comes from the cache.
    colmax_[j] = column_max(j, m_, no_override, m_);
  }
  base_score_ = 0.0;
  for (const double c : colmax_) base_score_ += c;
}

IncrementalStaticScorer::RowView IncrementalStaticScorer::fill_row(
    std::size_t model_index, std::span<const Slice> slices) const {
  assert(slices.size() == K_);
  // Route through the evaluator's own accessors so the cached values are
  // the exact doubles the non-incremental scorer would see.  The workspace
  // is thread-local; the row spans are arena-backed and zero-padded to Kp_
  // so row-wide lane kernels read exact zeros past K_.
  ScorerWorkspace& ws = tls_workspace();
  ws.prepare(Kp_, eval_->padded_procs());
  ModelPlan& probe = ws.probe;
  probe.model_index = model_index;
  probe.slices.assign(slices.begin(), slices.end());
  for (std::size_t k = 0; k < K_; ++k) {
    ws.row_solo[k] = eval_->stage_solo_ms(probe, k);
    ws.row_intensity[k] = eval_->stage_intensity(probe, k);
    ws.row_sensitivity[k] = eval_->stage_sensitivity(probe, k);
    ws.row_active[k] = probe.slices[k].empty() ? 0 : 1;
  }
  for (std::size_t k = K_; k < Kp_; ++k) {
    ws.row_solo[k] = 0.0;
    ws.row_intensity[k] = 0.0;
    ws.row_sensitivity[k] = 0.0;
    ws.row_active[k] = 0;
  }
  return RowView{ws.row_solo.data(), ws.row_intensity.data(),
                 ws.row_sensitivity.data(), ws.row_active.data()};
}

void IncrementalStaticScorer::store_row(std::size_t slot, const RowView& row) {
  const std::size_t base = slot * Kp_;
  for (std::size_t k = 0; k < Kp_; ++k) {
    cell_solo_[base + k] = row.solo[k];
    cell_intensity_[base + k] = row.intensity[k];
    cell_sensitivity_[base + k] = row.sensitivity[k];
    cell_active_[base + k] = row.active[k];
  }
}

double IncrementalStaticScorer::column_max(std::size_t j, std::size_t slot,
                                           const RowView& row_override,
                                           std::size_t num_rows) const {
  // Mirrors StaticEvaluator::stage_times for one column: members gathered
  // in ascending-stage order deposit their intensity into the dense
  // per-processor buffer, each victim's Eq. 2 sum is the fixed-order dot
  // product against its coupling row (the zero diagonal excludes the victim
  // itself), and the column max is a lane-wide reduction over the contended
  // times.  K is small (<= the processor count), so the member metadata
  // lives in the thread-local arena workspace.
  ScorerWorkspace& ws = tls_workspace();
  ws.prepare(Kp_, eval_->padded_procs());
  const std::size_t Pp = ws.pp;
  double* coli = ws.col_intensity.data();
  double* colt = ws.col_times.data();
  for (std::size_t q = 0; q < Pp; ++q) coli[q] = 0.0;
  for (std::size_t q = 0; q < Kp_; ++q) colt[q] = 0.0;

  std::size_t num_members = 0;
  std::size_t solo_k = 0;  // the member's stage when num_members == 1
  for (std::size_t k = 0; k < K_; ++k) {
    if (j < k) continue;
    const std::size_t i = j - k;
    if (i >= num_rows) continue;
    double solo, intensity, sensitivity;
    bool active;
    if (i == slot) {
      solo = row_override.solo[k];
      intensity = row_override.intensity[k];
      sensitivity = row_override.sensitivity[k];
      active = row_override.active[k] != 0;
    } else {
      const std::size_t idx = i * Kp_ + k;
      solo = cell_solo_[idx];
      intensity = cell_intensity_[idx];
      sensitivity = cell_sensitivity_[idx];
      active = cell_active_[idx] != 0;
    }
    if (!active) continue;
    coli[k] = intensity;
    colt[k] = solo;
    ws.col_sens[k] = sensitivity;
    ++num_members;
    solo_k = k;
  }

  if (num_members == 0) return 0.0;
  if (num_members < 2) {
    // Single member: its dense Eq. 2 sum is gamma(k, k) * I_k = 0 exactly,
    // so the contended factor is min(1 + 0, cap) = 1.0 and solo * 1.0 is
    // bit-identical to skipping contention — the old early-out, kept as a
    // pure fast path.
    return colt[solo_k];
  }
  for (std::size_t k = 0; k <= j && k < K_; ++k) {
    // Members with zero solo time stay zero under any factor and can't win
    // the max; stages with no member are zero by construction.
    if (colt[k] == 0.0) continue;
    const double extra = simd::fixed_dot(eval_->coupling_row(k), coli, Pp);
    const double factor =
        ContentionModel::slowdown_from_extra(extra, ws.col_sens[k]);
    colt[k] *= factor;
  }
  return simd::fixed_max(colt, Kp_, 0.0);
}

double IncrementalStaticScorer::score_with(std::size_t slot,
                                           std::span<const Slice> slices) const {
  if (m_ == 0) return 0.0;
  assert(slot < m_);
  const RowView row = fill_row(model_index_[slot], slices);

  const std::size_t num_cols = m_ + K_ - 1;
  const std::size_t lo = slot;
  const std::size_t hi = std::min(slot + K_, num_cols);  // exclusive
  double total = 0.0;
  // Full ascending column sum, exactly as makespan_ms performs it — only
  // the ≤ K affected columns are *recomputed*.
  for (std::size_t j = 0; j < num_cols; ++j) {
    total += (j >= lo && j < hi) ? column_max(j, slot, row, m_) : colmax_[j];
  }
  return total;
}

double IncrementalStaticScorer::score_appended(
    std::size_t model_index, std::span<const Slice> slices) const {
  const RowView row = fill_row(model_index, slices);
  // Columns j < m_ have no member from the appended row and keep their
  // cached maxima; columns [m_, m_+K-1] are recomputed with the new row
  // participating as slot m_ of an (m_+1)-row plan.
  double total = 0.0;
  for (std::size_t j = 0; j < m_; ++j) total += colmax_[j];
  for (std::size_t j = m_; j < m_ + K_; ++j) {
    total += column_max(j, m_, row, m_ + 1);
  }
  return total;
}

void IncrementalStaticScorer::apply_appended(std::size_t model_index,
                                             std::span<const Slice> slices) {
  const RowView row = fill_row(model_index, slices);
  for (std::size_t k = 0; k < K_; ++k) proc_solo_[k] += row.solo[k];
  model_index_.push_back(model_index);
  cell_solo_.resize((m_ + 1) * Kp_, 0.0);
  cell_intensity_.resize((m_ + 1) * Kp_, 0.0);
  cell_sensitivity_.resize((m_ + 1) * Kp_, 0.0);
  cell_active_.resize((m_ + 1) * Kp_, 0);
  store_row(m_, row);
  ++m_;

  colmax_.resize(m_ + K_ - 1);
  const RowView no_override;
  for (std::size_t j = m_ - 1; j < m_ + K_ - 1; ++j) {
    colmax_[j] = column_max(j, m_, no_override, m_);
  }
  base_score_ = 0.0;
  for (const double c : colmax_) base_score_ += c;
}

double IncrementalStaticScorer::des_lower_bound_with(
    std::size_t slot, std::span<const Slice> slices) const {
  if (m_ == 0) return 0.0;
  assert(slot < m_);
  const RowView row = fill_row(model_index_[slot], slices);
  // Lanewise (proc_solo - cell_row + candidate_row), then a lane max with
  // baseline 0.  All three arrays are zero past K_, so padding lanes
  // contribute an exact 0.0 and never win; elementwise arithmetic keeps
  // each lane's value bit-identical to the old scalar loop.
  ScorerWorkspace& ws = tls_workspace();
  double* tmp = ws.lb_tmp.data();
  const double* ps = proc_solo_.data();
  const double* cs = cell_solo_.data() + slot * Kp_;
  for (std::size_t k = 0; k < Kp_; k += simd::kLanes) {
    ((simd::Vec4d::load(ps + k) - simd::Vec4d::load(cs + k)) +
     simd::Vec4d::load(row.solo + k))
        .store(tmp + k);
  }
  return simd::fixed_max(tmp, Kp_, 0.0);
}

void IncrementalStaticScorer::apply(std::size_t slot,
                                    std::span<const Slice> slices) {
  if (m_ == 0) return;
  assert(slot < m_);
  const RowView row = fill_row(model_index_[slot], slices);
  for (std::size_t k = 0; k < K_; ++k) {
    proc_solo_[k] += row.solo[k] - cell_solo_[slot * Kp_ + k];
  }
  store_row(slot, row);

  const std::size_t num_cols = m_ + K_ - 1;
  const std::size_t hi = std::min(slot + K_, num_cols);
  const RowView no_override;
  for (std::size_t j = slot; j < hi; ++j) {
    colmax_[j] = column_max(j, m_, no_override, m_);
  }
  base_score_ = 0.0;
  for (const double c : colmax_) base_score_ += c;
}

double fork_join_wavefront_ms(const ContentionModel& contention,
                              std::span<const exec::ScheduledSlice> slices,
                              bool with_contention) {
  const std::size_t n = slices.size();
  if (n == 0) return 0.0;

  // Longest-path level per slice; deps always point at earlier entries
  // (slices arrive in a topological order), so one forward pass suffices.
  std::vector<std::size_t> level(n, 0);
  std::size_t num_levels = 1;
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::size_t d : slices[i].deps) {
      assert(d < i && "fork_join_wavefront_ms: window not self-contained");
      level[i] = std::max(level[i], level[d] + 1);
    }
    num_levels = std::max(num_levels, level[i] + 1);
  }

  std::vector<std::size_t> members;
  std::vector<Aggressor> others;
  double total = 0.0;
  for (std::size_t lv = 0; lv < num_levels; ++lv) {
    members.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (level[i] == lv) members.push_back(i);
    }
    // Per-processor serialized sum of the level's contended member times;
    // the level takes its slowest processor.
    double level_ms = 0.0;
    for (const std::size_t i : members) {
      double proc_ms = 0.0;
      for (const std::size_t j : members) {
        if (slices[j].proc_idx != slices[i].proc_idx) continue;
        double t = slices[j].solo_ms();
        if (with_contention) {
          others.clear();
          for (const std::size_t o : members) {
            if (slices[o].proc_idx == slices[j].proc_idx) continue;
            others.push_back(Aggressor{slices[o].proc_idx, slices[o].intensity});
          }
          t *= contention.slowdown(slices[j].proc_idx, slices[j].sensitivity,
                                   others);
        }
        proc_ms += t;
      }
      level_ms = std::max(level_ms, proc_ms);
    }
    total += level_ms;
  }
  return total;
}

}  // namespace h2p
