#include "core/partition.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace h2p {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Greedy feasibility probe: can the chain be tiled into K stages with every
/// stage cost <= budget?  With monotone range costs, maximal prefix
/// extension per stage is optimal, so the probe is exact.
bool feasible(const StageCostFn& cost, std::size_t n, std::size_t K, double budget,
              std::vector<Slice>* out) {
  std::size_t cursor = 0;
  std::vector<Slice> slices(K);
  for (std::size_t k = 0; k < K; ++k) {
    std::size_t end = cursor;
    // Extend the stage while it stays within budget.  Binary search the
    // farthest end (monotone in `end`), O(log n) oracle calls per stage.
    std::size_t lo = cursor, hi = n;
    while (lo < hi) {
      const std::size_t mid = (lo + hi + 1) / 2;
      if (cost(k, cursor, mid - 1) <= budget) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    end = lo;
    slices[k] = Slice{cursor, end};
    cursor = end;
    if (cursor == n) {
      for (std::size_t k2 = k + 1; k2 < K; ++k2) slices[k2] = Slice{n, n};
      break;
    }
  }
  if (cursor != n) return false;
  if (out) *out = std::move(slices);
  return true;
}

double max_stage_cost(const StageCostFn& cost, const std::vector<Slice>& slices) {
  double worst = 0.0;
  for (std::size_t k = 0; k < slices.size(); ++k) {
    if (slices[k].empty()) continue;
    worst = std::max(worst, cost(k, slices[k].begin, slices[k].end - 1));
  }
  return worst;
}

}  // namespace

PartitionResult partition_minmax(const StageCostFn& cost, std::size_t n,
                                 std::size_t K) {
  PartitionResult result;
  if (K == 0) return result;
  if (n == 0) {
    result.slices.assign(K, Slice{0, 0});
    return result;
  }

  // Upper bound: everything on stage 0; lower bound: 0.
  double hi = cost(0, 0, n - 1);
  for (std::size_t k = 1; k < K; ++k) hi = std::min(hi, cost(k, 0, n - 1));
  double lo = 0.0;

  std::vector<Slice> best;
  if (!feasible(cost, n, K, hi, &best)) {
    // Costs can be stage-dependent such that no single stage fits within the
    // cheapest whole-model cost; fall back to doubling.
    hi = std::max(hi, 1e-6);
    while (!feasible(cost, n, K, hi, &best)) {
      hi *= 2.0;
      if (hi > 1e18) break;
    }
  }

  for (int iter = 0; iter < 64 && hi - lo > 1e-9 * (1.0 + hi); ++iter) {
    const double mid = 0.5 * (lo + hi);
    std::vector<Slice> probe;
    if (feasible(cost, n, K, mid, &probe)) {
      hi = mid;
      best = std::move(probe);
    } else {
      lo = mid;
    }
  }

  result.slices = std::move(best);
  result.bottleneck_ms = max_stage_cost(cost, result.slices);
  return result;
}

PartitionResult partition_minmax_reference(const StageCostFn& cost, std::size_t n,
                                           std::size_t K) {
  PartitionResult result;
  if (K == 0) return result;
  if (n == 0) {
    result.slices.assign(K, Slice{0, 0});
    return result;
  }

  // dp[k][e] = optimal bottleneck for placing the first e layers on stages
  // [0, k]; e in [0, n].  choice[k][e] = begin of stage k's slice.
  std::vector<std::vector<double>> dp(K, std::vector<double>(n + 1, kInf));
  std::vector<std::vector<std::size_t>> choice(K, std::vector<std::size_t>(n + 1, 0));

  for (std::size_t e = 0; e <= n; ++e) {
    dp[0][e] = (e == 0) ? 0.0 : cost(0, 0, e - 1);
    choice[0][e] = 0;
  }
  for (std::size_t k = 1; k < K; ++k) {
    for (std::size_t e = 0; e <= n; ++e) {
      for (std::size_t b = 0; b <= e; ++b) {
        const double stage = (b == e) ? 0.0 : cost(k, b, e - 1);
        const double cand = std::max(dp[k - 1][b], stage);
        if (cand < dp[k][e]) {
          dp[k][e] = cand;
          choice[k][e] = b;
        }
      }
    }
  }

  result.slices.assign(K, Slice{});
  std::size_t e = n;
  for (std::size_t k = K; k-- > 0;) {
    const std::size_t b = (k == 0) ? 0 : choice[k][e];
    result.slices[k] = Slice{b, e};
    e = b;
  }
  result.bottleneck_ms = dp[K - 1][n];
  return result;
}

PartitionResult partition_minmax_restricted(
    const StageCostFn& cost, std::size_t n, std::size_t K,
    const std::vector<std::size_t>& legal_boundaries) {
  PartitionResult result;
  if (K == 0) return result;
  if (n == 0) {
    result.slices.assign(K, Slice{0, 0});
    return result;
  }

  // Canonical boundary list: sorted, unique, clipped to [0, n], with the
  // ends always present.  bounds[u] .. bounds[u+1] is super-unit u.
  std::vector<std::size_t> bounds{0, n};
  for (const std::size_t b : legal_boundaries) {
    if (b > 0 && b < n) bounds.push_back(b);
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  const std::size_t m = bounds.size() - 1;  // super-units
  const StageCostFn super_cost = [&](std::size_t k, std::size_t i,
                                     std::size_t j) {
    return cost(k, bounds[i], bounds[j + 1] - 1);
  };
  const PartitionResult collapsed = partition_minmax(super_cost, m, K);

  result.slices.reserve(collapsed.slices.size());
  for (const Slice& s : collapsed.slices) {
    result.slices.push_back(Slice{bounds[s.begin], bounds[s.end]});
  }
  result.bottleneck_ms = collapsed.bottleneck_ms;
  return result;
}

StageCostFn stage_cost_fn(const CostTable& table) {
  return [&table](std::size_t k, std::size_t i, std::size_t j) {
    double t = table.exec_ms(k, i, j);
    if (i > 0) t += table.boundary_copy_ms(k, i);
    return t;
  };
}

PartitionResult partition_model(const CostTable& table, std::size_t num_stages) {
  return partition_minmax(stage_cost_fn(table), table.num_layers(), num_stages);
}

}  // namespace h2p
