#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace h2p {

/// Result of the Algorithm-2 contention-mitigation pass.
struct MitigationResult {
  /// order[slot] = original request index (the re-arranged input sequence).
  std::vector<std::size_t> order;
  /// Classifier output per *original* request index.
  std::vector<bool> high;
  int relocations = 0;
  double displacement_cost = 0.0;  // sum of |j - i| over applied moves
  /// False when the paper's stop condition "no sufficient L" was hit with
  /// residual H-H overlap remaining.
  bool fully_mitigated = true;
};

/// True if any two high-contention requests sit within the same contention
/// window (Def. 4): positions closer than K apart.
bool has_window_violation(const std::vector<bool>& high_in_order, std::size_t K);

/// Algorithm 2 on explicit H/L labels: re-order the sequence by swapping
/// low-contention requests into clustered-H slots, choosing the swaps with a
/// Kuhn–Munkres assignment minimizing total displacement (P3 / Eq. 10).
/// Swaps that would create a *new* H cluster are forbidden (infinite cost).
std::vector<std::size_t> mitigate_order(const std::vector<bool>& high, std::size_t K,
                                        int* relocations = nullptr,
                                        double* displacement_cost = nullptr,
                                        bool* fully_mitigated = nullptr);

/// Full pass: classify intensities into H/L by percentile threshold, then
/// mitigate.  `classifier_percentile` is the H/L split point (§V-B).
MitigationResult mitigate_contention(std::span<const double> intensities,
                                     std::size_t K,
                                     double classifier_percentile = 0.5);

}  // namespace h2p
