#pragma once

#include <string>
#include <vector>

namespace h2p {

/// Aligned ASCII table printer used by the bench harnesses so that every
/// reproduced paper table/figure prints as readable rows.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; missing trailing cells render empty, extra cells widen
  /// the table.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  static std::string fmt(double v, int precision = 2);

  /// Render with column alignment and a header separator.
  [[nodiscard]] std::string to_string() const;

  /// Render directly to stdout.
  void print() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace h2p
