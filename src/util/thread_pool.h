#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace h2p {

/// Fixed-size worker pool for the planner's fan-out points.
///
/// Design constraints (they shape the API):
///  - Determinism: `run_indexed` gives every task its index; callers write
///    results[i] and reduce in index order afterwards, so a pooled run is
///    bit-identical to the inline sequential one.
///  - Exception propagation: the first-index exception of a batch is
///    rethrown in the submitting thread; the batch still runs to completion
///    so no task is left half-submitted.
///  - Nesting: a task may itself call `run_indexed` on the same pool.  The
///    waiting thread helps drain the queue instead of blocking, so nested
///    fan-out cannot deadlock even on a single-worker pool.
///  - Shutdown: the destructor finishes everything already queued (futures
///    from `submit` never dangle), then joins the workers.
class ThreadPool {
 public:
  /// `num_threads == 0` uses `configured_threads()`.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const { return workers_.size(); }

  /// Run fn(0), ..., fn(n-1) across the pool and block until all complete.
  /// The calling thread participates.  If any task throws, the exception of
  /// the lowest-index failing task is rethrown after the batch drains.
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Fire-and-collect: enqueue one task, get a future for its result (or
  /// exception).  Used where work outlives the submitting scope.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Pop one queued task and run it on the calling thread; false when the
  /// queue was empty.  Lets a thread blocked on a `submit` future help the
  /// pool instead of sleeping — the async online loop waits this way so a
  /// prefetched replan can never deadlock behind its own waiter, even on a
  /// one-worker pool.
  bool help_one() { return help_run_one(); }

  /// Block until `fut` is ready, draining queued tasks on the calling
  /// thread while waiting, then return the future's value (rethrowing its
  /// exception, if any).
  template <typename R>
  R wait_and_help(std::future<R>& fut) {
    while (fut.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!help_one()) fut.wait_for(std::chrono::milliseconds(1));
    }
    return fut.get();
  }

  /// Worker count from the H2P_THREADS environment variable (positive
  /// integer), falling back to std::thread::hardware_concurrency().
  static std::size_t configured_threads();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();
  /// Pop one queued task and run it; false if the queue was empty.
  bool help_run_one();

  std::mutex mu_;
  std::condition_variable cv_;  // queue became non-empty, or stopping
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// Run fn(i) for i in [0, n): inline and sequential when `pool` is null,
/// fanned out on the pool otherwise.  Both paths produce identical results
/// for independent tasks because collection is by index on the caller's
/// side — this is the single parallelism entry point the planner uses.
template <typename Fn>
void parallel_for(ThreadPool* pool, std::size_t n, Fn&& fn) {
  if (pool == nullptr || pool->num_threads() <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->run_indexed(n, std::function<void(std::size_t)>(std::forward<Fn>(fn)));
}

}  // namespace h2p
