#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <type_traits>

namespace h2p::util {

/// Monotonic bump allocator backing reusable scratch state.
///
/// All allocations are carved from one contiguous block; `reset()` rewinds
/// the bump pointer without releasing memory, so a consumer that carves the
/// same (or smaller) working set every cycle performs **zero** heap
/// allocations after its first, largest cycle.  When a cycle outgrows the
/// block, the arena grows geometrically on the next `reserve()` — live spans
/// from the *current* cycle stay valid because growth only ever happens
/// between `reset()` and the first carve (see `reserve`).
///
/// Every carve starts on a `kAlignment` (64-byte) boundary: one cache line,
/// and enough for any vector ISA the `util/simd.h` kernels compile to — so
/// `SimScratch` / scorer spans are always safe targets for aligned vector
/// loads, and distinct spans never share a cache line (no false sharing
/// between a span's tail and the next span's head).  Callers budgeting a
/// cycle with `reserve()` must allow `kAlignment` slack per carve.
///
/// Not thread-safe: one arena per thread (the DES scratch keeps
/// thread-local instances in pooled contexts).
class MonotonicArena {
 public:
  /// Carve alignment guarantee.  static_assert-able by consumers that
  /// require a minimum (the SIMD kernels need 32, a cache line is 64).
  static constexpr std::size_t kAlignment = 64;
  static_assert((kAlignment & (kAlignment - 1)) == 0,
                "alignment must be a power of two");

  MonotonicArena() = default;
  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Rewind to empty, retaining the underlying block.
  void reset() { used_ = 0; }

  /// Ensure the block can serve `bytes` without growing mid-cycle.  Must be
  /// called while the arena is empty (right after `reset()`): growing
  /// reallocates the block, which would invalidate spans carved earlier in
  /// the same cycle.
  void reserve(std::size_t bytes) {
    if (bytes <= capacity_) return;
    std::size_t grown = capacity_ ? capacity_ : 1024;
    while (grown < bytes) grown *= 2;
    // Over-allocate so the first carve can start on a kAlignment boundary
    // even when operator new returns a less-aligned block.
    block_ = std::make_unique<std::byte[]>(grown + kAlignment);
    const auto raw = reinterpret_cast<std::uintptr_t>(block_.get());
    const std::uintptr_t aligned = (raw + kAlignment - 1) & ~(kAlignment - 1);
    base_ = block_.get() + (aligned - raw);
    capacity_ = grown;
    used_ = 0;
  }

  /// Carve `count` default-initialized (i.e. uninitialized for scalars)
  /// elements of a trivially-destructible T, starting on a kAlignment
  /// boundary.  The caller is responsible for writing before reading; DES
  /// scratch buffers are fully re-initialized every simulation, which is
  /// what keeps reuse bit-deterministic.
  template <typename T>
  std::span<T> make_span(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    static_assert(alignof(T) <= kAlignment,
                  "carve alignment below the type's requirement");
    std::size_t at = (used_ + kAlignment - 1) & ~(kAlignment - 1);
    const std::size_t bytes = count * sizeof(T);
    if (at + bytes > capacity_) {
      // Mid-cycle growth fallback: legal only when nothing is live, which
      // SimScratch guarantees by sizing the whole cycle via reserve() first.
      reserve(at + bytes);
      at = 0;
    }
    T* ptr = std::launder(reinterpret_cast<T*>(base_ + at));
    used_ = at + bytes;
    return std::span<T>(ptr, count);
  }

  [[nodiscard]] std::size_t bytes_reserved() const { return capacity_; }
  [[nodiscard]] std::size_t bytes_used() const { return used_; }

 private:
  std::unique_ptr<std::byte[]> block_;
  std::byte* base_ = nullptr;  // first kAlignment-aligned byte of block_
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
};

}  // namespace h2p::util
