#pragma once

#include <cstddef>
#include <limits>

// Portable fixed-lane SIMD layer for the planning core's hot kernels.
//
// Every kernel here operates on a **fixed logical width of 4 double lanes**
// regardless of the instruction set actually used:
//
//   - AVX2:   one 256-bit register per logical vector;
//   - SSE2:   two 128-bit registers (lanes 0-1 and 2-3);
//   - NEON:   two 128-bit registers (aarch64 float64x2);
//   - scalar: four plain doubles (the `H2P_ENABLE_SIMD=OFF` fallback).
//
// Fixing the logical width — rather than letting each ISA pick its native
// one — is what makes results **bit-identical across every build flavour**:
// a reduction's floating-point operation sequence depends only on the
// documented lane layout below, never on which backend executed it.
//
// ## The fixed reduction-order contract
//
// Order-sensitive reductions (the Eq. 2 contention sum) follow ONE
// documented pairwise-tree order, everywhere:
//
//   1. term t_q is accumulated into lane (q mod 4), ascending q within
//      each lane:   lane_j = (..(t_j + t_{j+4}) + t_{j+8}) + ...
//   2. the horizontal combine is the fixed tree (l0 + l1) + (l2 + l3).
//
// Multiplies and adds are kept **unfused** (no FMA), matching what the
// scalar fallback computes, so `H2P_ENABLE_SIMD=ON` and `OFF` builds agree
// to the last ulp.  `sim/pipeline_sim_reference.cpp` hand-codes the same
// order with four scalar accumulators (no dependency on this header), and
// `core/bubbles.cpp` / `core/incremental.cpp` route through `fixed_dot`,
// which is how the SoA-vs-reference bit-identity suite and the
// incremental-vs-full scorer contract survive vectorization.
//
// Zero-padding invariance: callers pad buffers to `padded_size(n)` with
// zero tails.  A zero term contributes `+0.0` to a nonnegative partial sum
// (an exact no-op) and `0.0` never wins a max against a nonnegative
// baseline, so two buffers padded to different multiples of 4 reduce to
// bit-identical results.  min/max reductions are order-independent for
// finite doubles, so only the summation order needed freezing.

#if defined(H2P_SIMD_ENABLED)
#if defined(__AVX2__)
#define H2P_SIMD_ISA_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define H2P_SIMD_ISA_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__)
// aarch64 only: float64x2 arithmetic (including vdivq_f64) is not part of
// 32-bit NEON, and the kernels below divide.
#define H2P_SIMD_ISA_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace h2p::simd {

/// Logical lane count — fixed at 4 doubles on every backend (see the
/// header comment for why this is a determinism requirement, not a tuning
/// knob).
inline constexpr std::size_t kLanes = 4;

/// Smallest multiple of kLanes that holds `n` elements.
[[nodiscard]] constexpr std::size_t padded_size(std::size_t n) {
  return (n + kLanes - 1) & ~(kLanes - 1);
}

/// The instruction set the kernels below compile to, for bench context
/// annotations: "avx2", "sse2", "neon" or "scalar".
[[nodiscard]] constexpr const char* active_isa() {
#if defined(H2P_SIMD_ISA_AVX2)
  return "avx2";
#elif defined(H2P_SIMD_ISA_SSE2)
  return "sse2";
#elif defined(H2P_SIMD_ISA_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

/// One logical 4-double vector.  Only the operations the planning kernels
/// need; loads/stores are unaligned-safe (the arena hands out 64-byte
/// aligned spans, but stack temporaries need not be).
struct Vec4d {
#if defined(H2P_SIMD_ISA_AVX2)
  __m256d v;
  static Vec4d load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static Vec4d zero() { return {_mm256_setzero_pd()}; }
  static Vec4d broadcast(double x) { return {_mm256_set1_pd(x)}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
  friend Vec4d operator+(Vec4d a, Vec4d b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend Vec4d operator-(Vec4d a, Vec4d b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend Vec4d operator*(Vec4d a, Vec4d b) { return {_mm256_mul_pd(a.v, b.v)}; }
  friend Vec4d operator/(Vec4d a, Vec4d b) { return {_mm256_div_pd(a.v, b.v)}; }
  static Vec4d max(Vec4d a, Vec4d b) { return {_mm256_max_pd(a.v, b.v)}; }
  static Vec4d min(Vec4d a, Vec4d b) { return {_mm256_min_pd(a.v, b.v)}; }
  /// Lanewise a > b ? t : f.
  static Vec4d select_gt(Vec4d a, Vec4d b, Vec4d t, Vec4d f) {
    const __m256d m = _mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ);
    return {_mm256_blendv_pd(f.v, t.v, m)};
  }
  double lane(std::size_t i) const {
    alignas(32) double tmp[4];
    _mm256_store_pd(tmp, v);
    return tmp[i];
  }
#elif defined(H2P_SIMD_ISA_SSE2)
  __m128d lo, hi;  // lanes 0-1, lanes 2-3
  static Vec4d load(const double* p) {
    return {_mm_loadu_pd(p), _mm_loadu_pd(p + 2)};
  }
  static Vec4d zero() { return {_mm_setzero_pd(), _mm_setzero_pd()}; }
  static Vec4d broadcast(double x) { return {_mm_set1_pd(x), _mm_set1_pd(x)}; }
  void store(double* p) const {
    _mm_storeu_pd(p, lo);
    _mm_storeu_pd(p + 2, hi);
  }
  friend Vec4d operator+(Vec4d a, Vec4d b) {
    return {_mm_add_pd(a.lo, b.lo), _mm_add_pd(a.hi, b.hi)};
  }
  friend Vec4d operator-(Vec4d a, Vec4d b) {
    return {_mm_sub_pd(a.lo, b.lo), _mm_sub_pd(a.hi, b.hi)};
  }
  friend Vec4d operator*(Vec4d a, Vec4d b) {
    return {_mm_mul_pd(a.lo, b.lo), _mm_mul_pd(a.hi, b.hi)};
  }
  friend Vec4d operator/(Vec4d a, Vec4d b) {
    return {_mm_div_pd(a.lo, b.lo), _mm_div_pd(a.hi, b.hi)};
  }
  static Vec4d max(Vec4d a, Vec4d b) {
    return {_mm_max_pd(a.lo, b.lo), _mm_max_pd(a.hi, b.hi)};
  }
  static Vec4d min(Vec4d a, Vec4d b) {
    return {_mm_min_pd(a.lo, b.lo), _mm_min_pd(a.hi, b.hi)};
  }
  static Vec4d select_gt(Vec4d a, Vec4d b, Vec4d t, Vec4d f) {
    const __m128d ml = _mm_cmpgt_pd(a.lo, b.lo);
    const __m128d mh = _mm_cmpgt_pd(a.hi, b.hi);
    return {_mm_or_pd(_mm_and_pd(ml, t.lo), _mm_andnot_pd(ml, f.lo)),
            _mm_or_pd(_mm_and_pd(mh, t.hi), _mm_andnot_pd(mh, f.hi))};
  }
  double lane(std::size_t i) const {
    alignas(16) double tmp[4];
    _mm_store_pd(tmp, lo);
    _mm_store_pd(tmp + 2, hi);
    return tmp[i];
  }
#elif defined(H2P_SIMD_ISA_NEON)
  float64x2_t lo, hi;  // lanes 0-1, lanes 2-3
  static Vec4d load(const double* p) { return {vld1q_f64(p), vld1q_f64(p + 2)}; }
  static Vec4d zero() { return {vdupq_n_f64(0.0), vdupq_n_f64(0.0)}; }
  static Vec4d broadcast(double x) { return {vdupq_n_f64(x), vdupq_n_f64(x)}; }
  void store(double* p) const {
    vst1q_f64(p, lo);
    vst1q_f64(p + 2, hi);
  }
  friend Vec4d operator+(Vec4d a, Vec4d b) {
    return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
  }
  friend Vec4d operator-(Vec4d a, Vec4d b) {
    return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
  }
  friend Vec4d operator*(Vec4d a, Vec4d b) {
    return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
  }
  friend Vec4d operator/(Vec4d a, Vec4d b) {
    return {vdivq_f64(a.lo, b.lo), vdivq_f64(a.hi, b.hi)};
  }
  static Vec4d max(Vec4d a, Vec4d b) {
    return {vmaxq_f64(a.lo, b.lo), vmaxq_f64(a.hi, b.hi)};
  }
  static Vec4d min(Vec4d a, Vec4d b) {
    return {vminq_f64(a.lo, b.lo), vminq_f64(a.hi, b.hi)};
  }
  static Vec4d select_gt(Vec4d a, Vec4d b, Vec4d t, Vec4d f) {
    const uint64x2_t ml = vcgtq_f64(a.lo, b.lo);
    const uint64x2_t mh = vcgtq_f64(a.hi, b.hi);
    return {vbslq_f64(ml, t.lo, f.lo), vbslq_f64(mh, t.hi, f.hi)};
  }
  double lane(std::size_t i) const {
    double tmp[4];
    store(tmp);
    return tmp[i];
  }
#else
  double l[4];
  static Vec4d load(const double* p) { return {{p[0], p[1], p[2], p[3]}}; }
  static Vec4d zero() { return {{0.0, 0.0, 0.0, 0.0}}; }
  static Vec4d broadcast(double x) { return {{x, x, x, x}}; }
  void store(double* p) const {
    p[0] = l[0];
    p[1] = l[1];
    p[2] = l[2];
    p[3] = l[3];
  }
  friend Vec4d operator+(Vec4d a, Vec4d b) {
    return {{a.l[0] + b.l[0], a.l[1] + b.l[1], a.l[2] + b.l[2], a.l[3] + b.l[3]}};
  }
  friend Vec4d operator-(Vec4d a, Vec4d b) {
    return {{a.l[0] - b.l[0], a.l[1] - b.l[1], a.l[2] - b.l[2], a.l[3] - b.l[3]}};
  }
  friend Vec4d operator*(Vec4d a, Vec4d b) {
    return {{a.l[0] * b.l[0], a.l[1] * b.l[1], a.l[2] * b.l[2], a.l[3] * b.l[3]}};
  }
  friend Vec4d operator/(Vec4d a, Vec4d b) {
    return {{a.l[0] / b.l[0], a.l[1] / b.l[1], a.l[2] / b.l[2], a.l[3] / b.l[3]}};
  }
  static Vec4d max(Vec4d a, Vec4d b) {
    return {{a.l[0] > b.l[0] ? a.l[0] : b.l[0], a.l[1] > b.l[1] ? a.l[1] : b.l[1],
             a.l[2] > b.l[2] ? a.l[2] : b.l[2], a.l[3] > b.l[3] ? a.l[3] : b.l[3]}};
  }
  static Vec4d min(Vec4d a, Vec4d b) {
    return {{a.l[0] < b.l[0] ? a.l[0] : b.l[0], a.l[1] < b.l[1] ? a.l[1] : b.l[1],
             a.l[2] < b.l[2] ? a.l[2] : b.l[2], a.l[3] < b.l[3] ? a.l[3] : b.l[3]}};
  }
  static Vec4d select_gt(Vec4d a, Vec4d b, Vec4d t, Vec4d f) {
    return {{a.l[0] > b.l[0] ? t.l[0] : f.l[0], a.l[1] > b.l[1] ? t.l[1] : f.l[1],
             a.l[2] > b.l[2] ? t.l[2] : f.l[2], a.l[3] > b.l[3] ? t.l[3] : f.l[3]}};
  }
  double lane(std::size_t i) const { return l[i]; }
#endif
};

/// Horizontal sum in the fixed tree order (l0 + l1) + (l2 + l3), computed
/// with in-register shuffles (no lane spills to the stack — these run once
/// per fixed_dot call, squarely on the DES/rescoring hot path).
[[nodiscard]] inline double hsum(Vec4d v) {
#if defined(H2P_SIMD_ISA_AVX2)
  const __m128d lo = _mm256_castpd256_pd128(v.v);
  const __m128d hi = _mm256_extractf128_pd(v.v, 1);
  const double a = _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
  const double b = _mm_cvtsd_f64(_mm_add_sd(hi, _mm_unpackhi_pd(hi, hi)));
  return a + b;
#elif defined(H2P_SIMD_ISA_SSE2)
  const double a =
      _mm_cvtsd_f64(_mm_add_sd(v.lo, _mm_unpackhi_pd(v.lo, v.lo)));
  const double b =
      _mm_cvtsd_f64(_mm_add_sd(v.hi, _mm_unpackhi_pd(v.hi, v.hi)));
  return a + b;
#elif defined(H2P_SIMD_ISA_NEON)
  return vpaddd_f64(v.lo) + vpaddd_f64(v.hi);
#else
  return (v.l[0] + v.l[1]) + (v.l[2] + v.l[3]);
#endif
}

/// Horizontal max (order-independent for the finite inputs we feed it; the
/// tree shape matches hsum for symmetry).
[[nodiscard]] inline double hmax(Vec4d v) {
#if defined(H2P_SIMD_ISA_AVX2)
  const __m128d lo = _mm256_castpd256_pd128(v.v);
  const __m128d hi = _mm256_extractf128_pd(v.v, 1);
  const __m128d m = _mm_max_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_max_sd(m, _mm_unpackhi_pd(m, m)));
#elif defined(H2P_SIMD_ISA_SSE2)
  const __m128d m = _mm_max_pd(v.lo, v.hi);
  return _mm_cvtsd_f64(_mm_max_sd(m, _mm_unpackhi_pd(m, m)));
#elif defined(H2P_SIMD_ISA_NEON)
  const double a = vmaxvq_f64(v.lo);
  const double b = vmaxvq_f64(v.hi);
  return a > b ? a : b;
#else
  const double a = v.l[0] > v.l[1] ? v.l[0] : v.l[1];
  const double b = v.l[2] > v.l[3] ? v.l[2] : v.l[3];
  return a > b ? a : b;
#endif
}

[[nodiscard]] inline double hmin(Vec4d v) {
#if defined(H2P_SIMD_ISA_AVX2)
  const __m128d lo = _mm256_castpd256_pd128(v.v);
  const __m128d hi = _mm256_extractf128_pd(v.v, 1);
  const __m128d m = _mm_min_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_min_sd(m, _mm_unpackhi_pd(m, m)));
#elif defined(H2P_SIMD_ISA_SSE2)
  const __m128d m = _mm_min_pd(v.lo, v.hi);
  return _mm_cvtsd_f64(_mm_min_sd(m, _mm_unpackhi_pd(m, m)));
#elif defined(H2P_SIMD_ISA_NEON)
  const double a = vminvq_f64(v.lo);
  const double b = vminvq_f64(v.hi);
  return a < b ? a : b;
#else
  const double a = v.l[0] < v.l[1] ? v.l[0] : v.l[1];
  const double b = v.l[2] < v.l[3] ? v.l[2] : v.l[3];
  return a < b ? a : b;
#endif
}

/// THE canonical Eq. 2 reduction: dot(a, b) over `n_padded` (a multiple of
/// kLanes) elements in the documented fixed order — term q lands in lane
/// (q mod 4), final combine (l0 + l1) + (l2 + l3), multiplies unfused.
/// Every contended-slowdown sum in the codebase (DES rates, wavefront
/// column rescoring, the frozen reference) computes this exact sequence.
[[nodiscard]] inline double fixed_dot(const double* a, const double* b,
                                      std::size_t n_padded) {
  Vec4d acc = Vec4d::zero();
  for (std::size_t q = 0; q < n_padded; q += kLanes) {
    acc = acc + (Vec4d::load(a + q) * Vec4d::load(b + q));
  }
  return hsum(acc);
}

/// Every victim's Eq. 2 sum in one vertical pass: out[v] = dot(row_v, x)
/// for all `n_padded` victims at once, given the coupling matrix in
/// **column-major** form (column q, one double per victim, starts at
/// cols + q * n_padded).  Per victim this is the exact fixed_dot sequence —
/// term q accumulates into partial (q mod 4) in ascending-q order and the
/// partials combine as (p0 + p1) + (p2 + p3); the four partials simply live
/// in four accumulator registers (victim per vertical lane) instead of four
/// lanes of one register.  The DES rate kernel uses this to price all
/// processors per event in one sweep instead of one fixed_dot per running
/// task.
inline void fixed_matvec_cols(const double* cols, const double* x, double* out,
                              std::size_t n_padded) {
  for (std::size_t vb = 0; vb < n_padded; vb += kLanes) {
    Vec4d a0 = Vec4d::zero();
    Vec4d a1 = Vec4d::zero();
    Vec4d a2 = Vec4d::zero();
    Vec4d a3 = Vec4d::zero();
    for (std::size_t q = 0; q + kLanes <= n_padded; q += kLanes) {
      a0 = a0 + (Vec4d::load(cols + (q + 0) * n_padded + vb) *
                 Vec4d::broadcast(x[q + 0]));
      a1 = a1 + (Vec4d::load(cols + (q + 1) * n_padded + vb) *
                 Vec4d::broadcast(x[q + 1]));
      a2 = a2 + (Vec4d::load(cols + (q + 2) * n_padded + vb) *
                 Vec4d::broadcast(x[q + 2]));
      a3 = a3 + (Vec4d::load(cols + (q + 3) * n_padded + vb) *
                 Vec4d::broadcast(x[q + 3]));
    }
    ((a0 + a1) + (a2 + a3)).store(out + vb);
  }
}

/// Max over `n_padded` elements with baseline `init` (callers pass 0.0 and
/// zero-padded, nonnegative data, so padding never wins).
[[nodiscard]] inline double fixed_max(const double* x, std::size_t n_padded,
                                      double init) {
  Vec4d acc = Vec4d::broadcast(init);
  for (std::size_t q = 0; q < n_padded; q += kLanes) {
    acc = Vec4d::max(acc, Vec4d::load(x + q));
  }
  const double m = hmax(acc);
  return m > init ? m : init;
}

/// Masked min-ratio: min over { num[i] / max(den[i], den_floor) : den[i] > 0 },
/// +inf when no lane qualifies.  This is the DES `min dt` search — lanes
/// whose rate is zero (frozen/faulted tasks, padding) are blended to +inf
/// before the min, exactly like the scalar `continue`.
[[nodiscard]] inline double min_positive_ratio(const double* num,
                                               const double* den,
                                               std::size_t n_padded,
                                               double den_floor) {
  const Vec4d inf = Vec4d::broadcast(std::numeric_limits<double>::infinity());
  const Vec4d zero = Vec4d::zero();
  const Vec4d floor = Vec4d::broadcast(den_floor);
  Vec4d acc = inf;
  for (std::size_t q = 0; q < n_padded; q += kLanes) {
    const Vec4d d = Vec4d::load(den + q);
    const Vec4d ratio = Vec4d::load(num + q) / Vec4d::max(d, floor);
    acc = Vec4d::min(acc, Vec4d::select_gt(d, zero, ratio, inf));
  }
  return hmin(acc);
}

/// In-place x[i] -= r[i] * dt — the DES retirement advance.  Elementwise,
/// so bit-identical to the scalar loop by construction (unfused multiply).
inline void mul_sub_inplace(double* x, const double* r, double dt,
                            std::size_t n_padded) {
  const Vec4d vdt = Vec4d::broadcast(dt);
  for (std::size_t q = 0; q < n_padded; q += kLanes) {
    (Vec4d::load(x + q) - (Vec4d::load(r + q) * vdt)).store(x + q);
  }
}

}  // namespace h2p::simd
