#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace h2p {

/// Deterministic pseudo-random source used by every stochastic component
/// (workload generators, simulated annealing, synthetic PMU noise).
///
/// All experiments in the repo are seeded so that benches and tests are
/// reproducible run-to-run; pass a distinct seed per experiment id.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  /// Gaussian with the given mean / standard deviation.
  double gaussian(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Pick a uniformly random element index from a container of size n.
  std::size_t index(std::size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace h2p
