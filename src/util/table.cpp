#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace h2p {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::to_string() const {
  std::size_t cols = headers_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());

  std::vector<std::size_t> widths(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  };
  widen(headers_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      out << cell << std::string(widths[c] - cell.size(), ' ');
      if (c + 1 < cols) out << "  ";
    }
    out << '\n';
  };
  emit(headers_);
  for (std::size_t c = 0; c < cols; ++c) {
    out << std::string(widths[c], '-');
    if (c + 1 < cols) out << "  ";
  }
  out << '\n';
  for (const auto& r : rows_) emit(r);
  return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace h2p
