#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace h2p {

/// Minimal CSV writer so bench harnesses can dump raw series next to the
/// printed tables (useful for re-plotting the paper's figures).
class CsvWriter {
 public:
  /// Opens (truncates) the file; throws std::runtime_error on failure.
  CsvWriter(const std::string& path, std::vector<std::string> headers);

  void add_row(const std::vector<std::string>& cells);
  void add_row(const std::vector<double>& cells);

  /// Flushed and closed by the destructor as well.
  void close();

 private:
  static std::string escape(const std::string& cell);
  std::ofstream out_;
};

}  // namespace h2p
