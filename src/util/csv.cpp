#include "util/csv.h"

#include <sstream>
#include <stdexcept>

namespace h2p {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> headers) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  add_row(headers);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::add_row(const std::vector<double>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

}  // namespace h2p
