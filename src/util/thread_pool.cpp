#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace h2p {
namespace {

/// Shared completion state of one run_indexed batch.
struct Batch {
  explicit Batch(std::size_t n) : remaining(n), errors(n) {}
  std::atomic<std::size_t> remaining;
  std::atomic<bool> done{false};
  std::vector<std::exception_ptr> errors;  // slot i written only by task i
  std::mutex mu;
  std::condition_variable cv;
};

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  std::size_t n = num_threads == 0 ? configured_threads() : num_threads;
  if (n == 0) n = 1;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::configured_threads() {
  if (const char* env = std::getenv("H2P_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // On shutdown, drain what is queued before exiting so submitted
      // futures always resolve.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    static obs::Counter& jobs = obs::Registry::global().counter("pool.jobs");
    jobs.inc();
    const obs::Span span("pool.job");
    task();
  }
}

bool ThreadPool::help_run_one() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  static obs::Counter& help_runs =
      obs::Registry::global().counter("pool.help_runs");
  help_runs.inc();
  const obs::Span span("pool.job");
  task();
  return true;
}

void ThreadPool::run_indexed(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  auto batch = std::make_shared<Batch>(n);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < n; ++i) {
      // fn is captured by reference: run_indexed blocks until the whole
      // batch completed, so the referent outlives every task.
      queue_.emplace_back([batch, &fn, i] {
        try {
          fn(i);
        } catch (...) {
          batch->errors[i] = std::current_exception();
        }
        if (batch->remaining.fetch_sub(1) == 1) {
          {
            std::lock_guard<std::mutex> g(batch->mu);
            batch->done.store(true);
          }
          batch->cv.notify_all();
        }
      });
    }
  }
  cv_.notify_all();

  // Help drain the queue while waiting: the batch's own tasks, or — under
  // nested fan-out — whatever is in front of them.
  while (!batch->done.load()) {
    if (help_run_one()) continue;
    std::unique_lock<std::mutex> g(batch->mu);
    batch->cv.wait_for(g, std::chrono::milliseconds(1),
                       [&] { return batch->done.load(); });
  }

  for (const std::exception_ptr& e : batch->errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace h2p
