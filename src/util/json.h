#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace h2p {

/// Minimal JSON value — enough to round-trip the repo's config and plan
/// documents (objects, arrays, strings, numbers, booleans, null).  Not a
/// general-purpose parser: no \u escapes beyond pass-through, numbers are
/// doubles.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  static Json boolean(bool b);
  static Json number(double v);
  static Json string(std::string s);
  static Json array();
  static Json object();

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }

  // ---- accessors (throw std::runtime_error on type mismatch) -------------
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;

  // array
  void push_back(Json v);
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Json& at(std::size_t i) const;

  // object
  Json& operator[](const std::string& key);        // insert/overwrite
  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] const std::map<std::string, Json>& items() const;

  /// Compact serialization.
  [[nodiscard]] std::string dump() const;

  /// Parse; throws std::runtime_error with position info on bad input.
  static Json parse(const std::string& text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

}  // namespace h2p
