#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace h2p {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double minimum(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double maximum(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = minimum(xs);
  s.max = maximum(xs);
  s.p50 = percentile(xs, 0.50);
  s.p90 = percentile(xs, 0.90);
  s.p95 = percentile(xs, 0.95);
  s.p99 = percentile(xs, 0.99);
  return s;
}

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  LinearFit fit;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return fit;
  const double mx = mean(xs.subspan(0, n));
  const double my = mean(ys.subspan(0, n));
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

Json summary_to_json(const Summary& s) {
  const auto num = [](double v) {
    return std::isfinite(v) ? Json::number(v) : Json();
  };
  Json out = Json::object();
  out["count"] = Json::number(static_cast<double>(s.count));
  out["mean"] = num(s.mean);
  out["stddev"] = num(s.stddev);
  out["min"] = num(s.min);
  out["max"] = num(s.max);
  out["p50"] = num(s.p50);
  out["p90"] = num(s.p90);
  out["p95"] = num(s.p95);
  out["p99"] = num(s.p99);
  return out;
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += std::log(x);
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace h2p
