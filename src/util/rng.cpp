#include "util/rng.h"

namespace h2p {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

double Rng::gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::chance(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) return 0;
  std::uniform_int_distribution<std::size_t> dist(0, n - 1);
  return dist(engine_);
}

}  // namespace h2p
