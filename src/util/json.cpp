#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace h2p {

Json Json::boolean(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}
Json Json::number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}
Json Json::string(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}
Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}
Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

namespace {
[[noreturn]] void type_error(const char* want) {
  throw std::runtime_error(std::string("Json: not a ") + want);
}
}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool");
  return bool_;
}
double Json::as_number() const {
  if (type_ != Type::kNumber) type_error("number");
  return number_;
}
const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string");
  return string_;
}

void Json::push_back(Json v) {
  if (type_ != Type::kArray) type_error("array");
  array_.push_back(std::move(v));
}
std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  type_error("container");
}
const Json& Json::at(std::size_t i) const {
  if (type_ != Type::kArray) type_error("array");
  if (i >= array_.size()) throw std::runtime_error("Json: index out of range");
  return array_[i];
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object");
  return object_[key];
}
bool Json::contains(const std::string& key) const {
  return type_ == Type::kObject && object_.count(key) > 0;
}
const Json& Json::at(const std::string& key) const {
  if (type_ != Type::kObject) type_error("object");
  const auto it = object_.find(key);
  if (it == object_.end()) throw std::runtime_error("Json: missing key " + key);
  return it->second;
}
const std::map<std::string, Json>& Json::items() const {
  if (type_ != Type::kObject) type_error("object");
  return object_;
}

namespace {

void dump_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default: out << c;
    }
  }
  out << '"';
}

}  // namespace

std::string Json::dump() const {
  std::ostringstream out;
  switch (type_) {
    case Type::kNull: out << "null"; break;
    case Type::kBool: out << (bool_ ? "true" : "false"); break;
    case Type::kNumber: {
      if (number_ == std::floor(number_) && std::fabs(number_) < 1e15) {
        out << static_cast<long long>(number_);
      } else {
        // Shortest representation that parses back to the exact double:
        // fault scripts and results must replay bit-identically through a
        // dump/parse cycle, so lossy fixed precision is not an option.
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.15g", number_);
        if (std::strtod(buf, nullptr) != number_) {
          std::snprintf(buf, sizeof buf, "%.17g", number_);
        }
        out << buf;
      }
      break;
    }
    case Type::kString: dump_string(out, string_); break;
    case Type::kArray: {
      out << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out << ',';
        out << array_[i].dump();
      }
      out << ']';
      break;
    }
    case Type::kObject: {
      out << '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out << ',';
        first = false;
        dump_string(out, k);
        out << ':' << v.dump();
      }
      out << '}';
      break;
    }
  }
  return out.str();
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("Json::parse at offset " + std::to_string(pos_) +
                             ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::string(lit).size();
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return Json::string(string());
    if (consume_literal("true")) return Json::boolean(true);
    if (consume_literal("false")) return Json::boolean(false);
    if (consume_literal("null")) return Json();
    return number();
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          default: fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    try {
      return Json::number(std::stod(text_.substr(start, pos_ - start)));
    } catch (...) {
      fail("bad number");
    }
  }

  Json array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  Json object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      const std::string key = string();
      skip_ws();
      expect(':');
      obj[key] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace h2p
