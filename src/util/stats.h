#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/json.h"

namespace h2p {

/// Summary statistics over a sample of scalar observations.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);
double minimum(std::span<const double> xs);
double maximum(std::span<const double> xs);

/// Percentile with linear interpolation; q in [0, 1].
double percentile(std::span<const double> xs, double q);

Summary summarize(std::span<const double> xs);

/// Canonical JSON form of a Summary — one serializer shared by every
/// consumer (metrics snapshots, bench headers) instead of hand-rolled
/// field-by-field copies:
///   {"count":n,"mean":..,"stddev":..,"min":..,"max":..,
///    "p50":..,"p90":..,"p95":..,"p99":..}
/// Non-finite values (an empty histogram's min/max) serialize as null.
Json summary_to_json(const Summary& s);

/// Ordinary least-squares fit y = a + b*x; returns {a, b, r2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Geometric mean of strictly positive values.
double geomean(std::span<const double> xs);

}  // namespace h2p
