#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace h2p {

/// Summary statistics over a sample of scalar observations.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);
double minimum(std::span<const double> xs);
double maximum(std::span<const double> xs);

/// Percentile with linear interpolation; q in [0, 1].
double percentile(std::span<const double> xs, double q);

Summary summarize(std::span<const double> xs);

/// Ordinary least-squares fit y = a + b*x; returns {a, b, r2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Geometric mean of strictly positive values.
double geomean(std::span<const double> xs);

}  // namespace h2p
