#include "baselines/pipeit.h"

#include <algorithm>
#include <stdexcept>

#include "exec/compiled_plan.h"
#include "sim/pipeline_sim.h"

namespace h2p {
namespace {

struct Procs {
  std::size_t big;
  std::size_t small;
};

Procs find_procs(const StaticEvaluator& eval) {
  const int big = eval.soc().find(ProcKind::kCpuBig);
  const int small = eval.soc().find(ProcKind::kCpuSmall);
  if (big < 0 || small < 0) {
    throw std::runtime_error("run_pipeit: Soc lacks big/small CPU clusters");
  }
  return {static_cast<std::size_t>(big), static_cast<std::size_t>(small)};
}

double split_objective(const StaticEvaluator& eval, std::size_t model_idx,
                       const Procs& procs, std::size_t b) {
  const Model& m = eval.model(model_idx);
  const std::size_t n = m.num_layers();
  const CostTable& t = eval.table(model_idx);
  const double big_ms = (b == 0) ? 0.0 : t.exec_ms(procs.big, 0, b - 1);
  double small_ms = 0.0;
  if (b < n) {
    small_ms = t.exec_ms(procs.small, b, n - 1);
    if (b > 0) small_ms += t.boundary_copy_ms(procs.small, b);
  }
  return std::max(big_ms, small_ms);
}

}  // namespace

std::size_t pipeit_split(const StaticEvaluator& eval, std::size_t model_idx) {
  const Procs procs = find_procs(eval);
  const std::size_t n = eval.model(model_idx).num_layers();
  if (n == 0) return 0;

  // Local search: start from a flops-proportional seed and hill-climb +/-1
  // until no neighbour improves (Pipe-it's published strategy).
  const double big_speed = eval.soc().processor(procs.big).peak_gflops;
  const double small_speed = eval.soc().processor(procs.small).peak_gflops;
  std::size_t b = static_cast<std::size_t>(
      static_cast<double>(n) * big_speed / (big_speed + small_speed));
  b = std::min(b, n);

  double current = split_objective(eval, model_idx, procs, b);
  for (;;) {
    double best = current;
    std::size_t best_b = b;
    if (b > 0) {
      const double v = split_objective(eval, model_idx, procs, b - 1);
      if (v < best) { best = v; best_b = b - 1; }
    }
    if (b < n) {
      const double v = split_objective(eval, model_idx, procs, b + 1);
      if (v < best) { best = v; best_b = b + 1; }
    }
    if (best_b == b) break;
    b = best_b;
    current = best;
  }
  return b;
}

Timeline run_pipeit(const StaticEvaluator& eval) {
  const Procs procs = find_procs(eval);
  exec::CompiledPlanBuilder builder(eval);

  for (std::size_t i = 0; i < eval.num_models(); ++i) {
    const std::size_t n = eval.model(i).num_layers();
    const std::size_t slot = builder.add_slot(i);
    if (n == 0) continue;
    const std::size_t b = pipeit_split(eval, i);
    std::size_t seq = 0;
    if (b > 0) builder.add_range(slot, seq++, procs.big, 0, b);
    if (b < n) builder.add_range(slot, seq++, procs.small, b, n);
  }
  return simulate(eval.soc(), tasks_from_compiled(builder.build()), {});
}

}  // namespace h2p
