#pragma once

#include <vector>

#include "core/bubbles.h"
#include "sim/pipeline_sim.h"
#include "sim/trace.h"

namespace h2p {

/// One Band dispatch decision (exposed for tests).
struct BandDispatch {
  std::size_t model_idx = 0;
  std::size_t proc_idx = 0;       // primary processor chosen greedily
  bool npu_fallback = false;      // second subgraph forwarded off the NPU
  std::size_t fallback_proc = 0;  // where the unsupported remainder went
  std::size_t fallback_layer = 0; // first forwarded layer
};

/// Band baseline (§VI-A / MobiSys'22): greedy coordinator that sends each
/// request, at its ready time, to the processor with the earliest estimated
/// finish (availability + solo execution).  Requests whose operators the
/// NPU cannot run are split at the first unsupported operator and the
/// remainder falls back to the next-best processor.  No pipeline planning,
/// no contention awareness — the estimates ignore co-execution slowdown,
/// which the simulator then applies.
std::vector<BandDispatch> band_dispatch(const StaticEvaluator& eval);

Timeline run_band(const StaticEvaluator& eval);

}  // namespace h2p
