#pragma once

#include <cstddef>

#include "core/bubbles.h"
#include "core/plan.h"
#include "sim/trace.h"

namespace h2p {

struct ExhaustiveResult {
  PipelinePlan plan;
  double makespan_ms = 0.0;     // DES makespan of the best plan found
  std::size_t evaluated = 0;    // number of candidate plans simulated
  bool truncated = false;       // permutation budget exhausted
};

/// Vertical-direction exhaustive search (the Fig-8 ablation's optimality
/// reference): enumerate request orderings (up to `max_permutations`), apply
/// the Algorithm-1 horizontal slicing plus work stealing to each, and keep
/// the ordering whose discrete-event makespan is smallest.  Exponential in
/// |M| — only usable on small sequences, which is exactly why the paper
/// needs the polynomial planner.
ExhaustiveResult exhaustive_search(const StaticEvaluator& eval,
                                   std::size_t max_permutations = 5040);

}  // namespace h2p
