#pragma once

#include "core/bubbles.h"
#include "sim/trace.h"

namespace h2p {

/// DART baseline (RTSS'19 / Table I): pipelined *data parallelism* on
/// CPU/GPU — whole requests are dispatched round-robin-by-readiness across
/// the two general-purpose processors, each request executing entirely on
/// one of them.  No model slicing, no NPU, no contention awareness; the
/// parallelism is across requests only.  This sits between MNN (one
/// processor) and Band (all processors) and isolates how much of
/// Hetero2Pipe's win comes from model-level slicing rather than plain
/// request-level parallelism.
Timeline run_dart(const StaticEvaluator& eval);

}  // namespace h2p
