#include "baselines/ulayer.h"

#include <algorithm>
#include <stdexcept>

#include "exec/compiled_plan.h"
#include "sim/pipeline_sim.h"

namespace h2p {
namespace {

struct Procs {
  std::size_t cpu;
  std::size_t gpu;
};

Procs find_procs(const StaticEvaluator& eval) {
  const int cpu = eval.soc().find(ProcKind::kCpuBig);
  const int gpu = eval.soc().find(ProcKind::kGpu);
  if (cpu < 0 || gpu < 0) {
    throw std::runtime_error("run_ulayer: Soc lacks CPU big cluster or GPU");
  }
  return {static_cast<std::size_t>(cpu), static_cast<std::size_t>(gpu)};
}

}  // namespace

std::vector<ULayerSplit> ulayer_splits(const StaticEvaluator& eval,
                                       std::size_t model_idx) {
  const Procs procs = find_procs(eval);
  const Model& model = eval.model(model_idx);
  const CostModel& cost = eval.cost_model();
  const Processor& cpu = eval.soc().processor(procs.cpu);
  const Processor& gpu = eval.soc().processor(procs.gpu);

  std::vector<ULayerSplit> splits;
  splits.reserve(model.num_layers());
  for (const Layer& layer : model.layers()) {
    const double t_cpu = cost.layer_time_ms(layer, cpu);
    const double t_gpu = cost.layer_time_ms(layer, gpu);
    ULayerSplit s;
    // Channel-proportional split balancing the two partial executions:
    // share r on the CPU costs ~ r * t_cpu, (1 - r) on the GPU.
    s.cpu_share = t_gpu / std::max(t_cpu + t_gpu, 1e-12);
    const double part = std::max(s.cpu_share * t_cpu, (1.0 - s.cpu_share) * t_gpu);
    // Both halves of the output tensor cross the bus to be merged, and the
    // next layer re-reads the merged tensor on both devices.
    s.merge_ms = cost.copy_ms(layer.output_bytes, gpu);
    s.layer_ms = part + s.merge_ms;
    splits.push_back(s);
  }
  return splits;
}

Timeline run_ulayer(const StaticEvaluator& eval) {
  const Procs procs = find_procs(eval);
  exec::CompiledPlanBuilder builder(eval);

  for (std::size_t i = 0; i < eval.num_models(); ++i) {
    const Model& model = eval.model(i);
    const std::size_t n = model.num_layers();
    const std::size_t slot = builder.add_slot(i);
    if (n == 0) continue;
    const auto splits = ulayer_splits(eval, i);
    double total_ms = 0.0;
    for (const ULayerSplit& s : splits) total_ms += s.layer_ms;

    // Both processors are occupied lock-step for the whole cooperative
    // execution (same seq: no chain dependency between the halves) and
    // aggress on each other across the bus with the model's own CPU/GPU
    // contention signatures.  The execution time is the cooperative
    // per-layer max-plus-merge model, not the slice's solo time, so it
    // overrides what lower_range derived.
    for (const std::size_t proc : {procs.cpu, procs.gpu}) {
      exec::ScheduledSlice& slice = builder.add_range(slot, 0, proc, 0, n);
      slice.exec_ms = total_ms;
      slice.boundary_copy_ms = 0.0;
    }
  }
  return simulate(eval.soc(), tasks_from_compiled(builder.build()), {});
}

}  // namespace h2p
