#include "baselines/band.h"

#include <algorithm>
#include <limits>

#include "exec/compiled_plan.h"

namespace h2p {
namespace {

struct Candidate {
  double finish_ms = std::numeric_limits<double>::infinity();
  BandDispatch dispatch;
  double primary_ms = 0.0;
  double fallback_ms = 0.0;
};

}  // namespace

std::vector<BandDispatch> band_dispatch(const StaticEvaluator& eval) {
  const Soc& soc = eval.soc();
  const std::size_t P = soc.num_processors();
  std::vector<double> free_at(P, 0.0);
  std::vector<BandDispatch> dispatches;

  for (std::size_t i = 0; i < eval.num_models(); ++i) {
    const Model& model = eval.model(i);
    const std::size_t n = model.num_layers();
    if (n == 0) continue;
    const CostTable& table = eval.table(i);

    Candidate best;
    for (std::size_t p = 0; p < P; ++p) {
      Candidate c;
      c.dispatch.model_idx = i;
      c.dispatch.proc_idx = p;
      const bool is_npu = soc.processor(p).kind == ProcKind::kNpu;
      const std::size_t u = is_npu ? model.first_npu_unsupported(0, n - 1) : n;

      if (!is_npu || u >= n) {
        c.primary_ms = table.exec_ms(p, 0, n - 1);
        c.finish_ms = free_at[p] + c.primary_ms;
      } else {
        // Split at the first unsupported operator; the remainder falls back
        // to whichever of CPU big / GPU finishes it earliest.
        c.dispatch.npu_fallback = true;
        c.dispatch.fallback_layer = u;
        c.primary_ms = (u > 0) ? table.exec_ms(p, 0, u - 1) : 0.0;
        const double npu_done = free_at[p] + c.primary_ms;

        double fb_finish = std::numeric_limits<double>::infinity();
        for (ProcKind kind : {ProcKind::kCpuBig, ProcKind::kGpu}) {
          const int fb = soc.find(kind);
          if (fb < 0) continue;
          const auto fbp = static_cast<std::size_t>(fb);
          const double ms = table.exec_ms(fbp, u, n - 1) +
                            table.boundary_copy_ms(fbp, u);
          const double finish = std::max(free_at[fbp], npu_done) + ms;
          if (finish < fb_finish) {
            fb_finish = finish;
            c.dispatch.fallback_proc = fbp;
            c.fallback_ms = ms;
          }
        }
        c.finish_ms = fb_finish;
      }
      if (c.finish_ms < best.finish_ms) best = c;
    }

    // Commit the greedy choice and advance availability estimates.
    const BandDispatch& d = best.dispatch;
    if (d.npu_fallback) {
      const double npu_done = free_at[d.proc_idx] + best.primary_ms;
      free_at[d.proc_idx] = npu_done;
      free_at[d.fallback_proc] =
          std::max(free_at[d.fallback_proc], npu_done) + best.fallback_ms;
    } else {
      free_at[d.proc_idx] += best.primary_ms;
    }
    dispatches.push_back(d);
  }
  return dispatches;
}

Timeline run_band(const StaticEvaluator& eval) {
  const std::vector<BandDispatch> dispatches = band_dispatch(eval);
  exec::CompiledPlanBuilder builder(eval);
  // Dispatch decisions skip 0-layer models, so slots must be registered for
  // every model index up to the one being lowered to keep slot == model_idx.
  auto slot_for = [&builder, next = std::size_t{0}](std::size_t model_idx) mutable {
    while (next <= model_idx) builder.add_slot(next++);
    return model_idx;
  };

  for (const BandDispatch& d : dispatches) {
    const std::size_t n = eval.model(d.model_idx).num_layers();
    const std::size_t slot = slot_for(d.model_idx);

    if (!d.npu_fallback) {
      builder.add_range(slot, 0, d.proc_idx, 0, n);
      continue;
    }
    std::size_t seq = 0;
    if (d.fallback_layer > 0) {
      builder.add_range(slot, seq++, d.proc_idx, 0, d.fallback_layer);
    }
    builder.add_range(slot, seq, d.fallback_proc, d.fallback_layer, n);
  }
  return simulate(eval.soc(), tasks_from_compiled(builder.build()), {});
}

}  // namespace h2p
