#pragma once

#include "core/bubbles.h"
#include "sim/trace.h"

namespace h2p {

/// Pipe-it baseline (§VI-A): a two-stage pipeline across the CPU big and
/// small clusters only (the paper's adaptation uses the fastest core
/// combination — all four big, all four small — to avoid intra-cluster
/// cache incoherence).  Per-model split point found by local search
/// (Table I lists Pipe-it's algorithm as local search, not DP); no
/// contention awareness, no NPU/GPU.
Timeline run_pipeit(const StaticEvaluator& eval);

/// The split point local search (exposed for tests): returns the boundary b
/// such that stage 1 = [0, b) on CPU big, stage 2 = [b, n) on CPU small,
/// minimizing the max stage time for one model.
std::size_t pipeit_split(const StaticEvaluator& eval, std::size_t model_idx);

}  // namespace h2p
