#include "baselines/annealing.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace h2p {

AnnealingResult simulated_annealing(const StaticEvaluator& eval,
                                    const AnnealingOptions& options) {
  AnnealingResult result;
  const std::size_t m = eval.num_models();
  const std::size_t K = eval.soc().num_processors();

  PipelinePlan current = horizontal_plan(eval, K);
  double current_cost = eval.makespan_ms(current);
  PipelinePlan best = current;
  double best_cost = current_cost;

  Rng rng(options.seed);
  double temp = options.initial_temp;

  for (int iter = 0; iter < options.iterations; ++iter, temp *= options.cooling) {
    PipelinePlan neighbour = current;
    if (m >= 2 && rng.chance(0.5)) {
      // Swap two requests in the sequence.
      const std::size_t a = rng.index(m);
      std::size_t b = rng.index(m);
      if (a == b) b = (b + 1) % m;
      std::swap(neighbour.models[a], neighbour.models[b]);
    } else {
      // Nudge one stage boundary of one model by one layer.
      const std::size_t slot = rng.index(m);
      ModelPlan& mp = neighbour.models[slot];
      const std::size_t n = eval.model(mp.model_index).num_layers();
      if (n == 0 || K < 2) continue;
      // boundaries b[0]=0..b[K]=n; pick k in [1, K-1].
      std::vector<std::size_t> b(K + 1, 0);
      b[K] = n;
      std::size_t cursor = 0;
      for (std::size_t k = 0; k < K; ++k) {
        b[k] = cursor;
        if (!mp.slices[k].empty()) cursor = mp.slices[k].end;
      }
      const std::size_t k = 1 + rng.index(K - 1);
      const int dir = rng.chance(0.5) ? 1 : -1;
      if (dir > 0 && b[k] < b[k + 1]) {
        ++b[k];
      } else if (dir < 0 && b[k] > b[k - 1]) {
        --b[k];
      } else {
        continue;
      }
      for (std::size_t s = 0; s < K; ++s) mp.slices[s] = Slice{b[s], b[s + 1]};
    }

    const double cost = eval.makespan_ms(neighbour);
    const double delta = cost - current_cost;
    if (delta <= 0.0 || rng.uniform() < std::exp(-delta / std::max(temp, 1e-6))) {
      current = std::move(neighbour);
      current_cost = cost;
      ++result.accepted_moves;
      if (current_cost < best_cost) {
        best = current;
        best_cost = current_cost;
      }
    }
  }

  result.plan = std::move(best);
  result.static_makespan_ms = best_cost;
  return result;
}

}  // namespace h2p
