#pragma once

#include <cstddef>

#include "core/bubbles.h"
#include "sim/trace.h"

namespace h2p {

/// Per-layer split decision of the intra-operator baseline.
struct ULayerSplit {
  double cpu_share = 0.5;    // fraction of output channels on the CPU
  double layer_ms = 0.0;     // max(cpu part, gpu part) + merge overhead
  double merge_ms = 0.0;     // per-layer synchronization / tensor merge
};

/// muLayer-style intra-operator partitioning baseline (EuroSys'19 /
/// Table I): every layer is split channel-wise across the CPU big cluster
/// and the GPU, which run it cooperatively and must merge the two partial
/// output tensors before the next layer starts.
///
/// This is the alternative parallelism the paper argues against for
/// multi-DNN streams (§II-A): "the intermediate results from different
/// processors are deemed to be merged with additional overhead of
/// significant communication/memory copy per split" — and the two
/// processors co-run continuously, paying the CPU-GPU bus coupling on
/// every layer.  Models in the request stream execute serially (no
/// pipelining across requests).
std::vector<ULayerSplit> ulayer_splits(const StaticEvaluator& eval,
                                       std::size_t model_idx);

Timeline run_ulayer(const StaticEvaluator& eval);

}  // namespace h2p
