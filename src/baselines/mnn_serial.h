#pragma once

#include "core/bubbles.h"
#include "sim/trace.h"

namespace h2p {

/// Vanilla MNN baseline (§VI-A): the canonical CPU-centric implementation —
/// every request executes serially, in order, on the CPU big cluster.
Timeline run_mnn_serial(const StaticEvaluator& eval);

/// Closed form for the same quantity (sum of CPU_Big solo times).
double mnn_serial_latency_ms(const StaticEvaluator& eval);

}  // namespace h2p
