#include "baselines/exhaustive.h"

#include <algorithm>
#include <numeric>

#include "core/work_stealing.h"
#include "sim/pipeline_sim.h"

namespace h2p {

ExhaustiveResult exhaustive_search(const StaticEvaluator& eval,
                                   std::size_t max_permutations) {
  ExhaustiveResult result;
  const std::size_t m = eval.num_models();
  const std::size_t K = eval.soc().num_processors();

  const PipelinePlan base = horizontal_plan(eval, K);
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), 0);

  double best = -1.0;
  do {
    PipelinePlan candidate;
    candidate.num_stages = K;
    candidate.models.reserve(m);
    for (std::size_t slot = 0; slot < m; ++slot) {
      candidate.models.push_back(base.models[order[slot]]);
    }
    vertical_align(candidate, eval, {});

    const Timeline t = simulate_plan(candidate, eval);
    ++result.evaluated;
    if (best < 0.0 || t.makespan_ms() < best) {
      best = t.makespan_ms();
      result.plan = candidate;
      result.makespan_ms = best;
    }
    if (result.evaluated >= max_permutations) {
      result.truncated = std::next_permutation(order.begin(), order.end());
      return result;
    }
  } while (std::next_permutation(order.begin(), order.end()));

  return result;
}

}  // namespace h2p
