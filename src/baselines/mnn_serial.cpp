#include "baselines/mnn_serial.h"

#include <stdexcept>

#include "sim/pipeline_sim.h"

namespace h2p {

Timeline run_mnn_serial(const StaticEvaluator& eval) {
  const int cpu_b = eval.soc().find(ProcKind::kCpuBig);
  if (cpu_b < 0) throw std::runtime_error("run_mnn_serial: Soc has no CPU big cluster");

  std::vector<SimTask> tasks;
  for (std::size_t i = 0; i < eval.num_models(); ++i) {
    const Model& model = eval.model(i);
    if (model.num_layers() == 0) continue;
    SimTask t;
    t.model_idx = i;
    t.seq_in_model = 0;
    t.proc_idx = static_cast<std::size_t>(cpu_b);
    t.solo_ms = eval.table(i).exec_ms(t.proc_idx, 0, model.num_layers() - 1);
    t.sensitivity = eval.table(i).mem_sensitivity(t.proc_idx, 0, model.num_layers() - 1);
    t.intensity = eval.table(i).intensity(t.proc_idx, 0, model.num_layers() - 1);
    tasks.push_back(t);
  }
  // Single processor: no co-execution, contention model is a no-op.
  return simulate(eval.soc(), std::move(tasks), {});
}

double mnn_serial_latency_ms(const StaticEvaluator& eval) {
  const int cpu_b = eval.soc().find(ProcKind::kCpuBig);
  if (cpu_b < 0) throw std::runtime_error("mnn_serial_latency_ms: no CPU big cluster");
  double total = 0.0;
  for (std::size_t i = 0; i < eval.num_models(); ++i) {
    const Model& model = eval.model(i);
    if (model.num_layers() == 0) continue;
    total += eval.table(i).exec_ms(static_cast<std::size_t>(cpu_b), 0,
                                   model.num_layers() - 1);
  }
  return total;
}

}  // namespace h2p
