#include "baselines/mnn_serial.h"

#include <stdexcept>

#include "exec/compiled_plan.h"
#include "sim/pipeline_sim.h"

namespace h2p {

Timeline run_mnn_serial(const StaticEvaluator& eval) {
  const int cpu_b = eval.soc().find(ProcKind::kCpuBig);
  if (cpu_b < 0) throw std::runtime_error("run_mnn_serial: Soc has no CPU big cluster");

  exec::CompiledPlanBuilder builder(eval);
  for (std::size_t i = 0; i < eval.num_models(); ++i) {
    const std::size_t n = eval.model(i).num_layers();
    const std::size_t slot = builder.add_slot(i);
    if (n == 0) continue;
    builder.add_range(slot, 0, static_cast<std::size_t>(cpu_b), 0, n);
  }
  // Single processor: no co-execution, contention model is a no-op.
  return simulate(eval.soc(), tasks_from_compiled(builder.build()), {});
}

double mnn_serial_latency_ms(const StaticEvaluator& eval) {
  const int cpu_b = eval.soc().find(ProcKind::kCpuBig);
  if (cpu_b < 0) throw std::runtime_error("mnn_serial_latency_ms: no CPU big cluster");
  double total = 0.0;
  for (std::size_t i = 0; i < eval.num_models(); ++i) {
    const Model& model = eval.model(i);
    if (model.num_layers() == 0) continue;
    total += eval.table(i).exec_ms(static_cast<std::size_t>(cpu_b), 0,
                                   model.num_layers() - 1);
  }
  return total;
}

}  // namespace h2p
