#pragma once

#include <cstdint>

#include "core/bubbles.h"
#include "core/plan.h"

namespace h2p {

struct AnnealingOptions {
  int iterations = 4000;
  double initial_temp = 50.0;   // in ms of makespan degradation accepted
  double cooling = 0.995;       // geometric schedule
  std::uint64_t seed = 42;
};

struct AnnealingResult {
  PipelinePlan plan;
  double static_makespan_ms = 0.0;
  int accepted_moves = 0;
};

/// Simulated-annealing planner (the Fig-8 meta-heuristic comparator).
/// State = request ordering + per-model stage boundaries; neighbourhood =
/// {swap two requests, move one boundary by one layer}; objective = static
/// contention-aware makespan.
AnnealingResult simulated_annealing(const StaticEvaluator& eval,
                                    const AnnealingOptions& options = {});

}  // namespace h2p
