#include "baselines/dart.h"

#include <stdexcept>

#include "exec/compiled_plan.h"
#include "sim/pipeline_sim.h"

namespace h2p {

Timeline run_dart(const StaticEvaluator& eval) {
  const Soc& soc = eval.soc();
  const int cpu = soc.find(ProcKind::kCpuBig);
  const int gpu = soc.find(ProcKind::kGpu);
  if (cpu < 0 || gpu < 0) {
    throw std::runtime_error("run_dart: Soc lacks CPU big cluster or GPU");
  }
  const auto cpu_i = static_cast<std::size_t>(cpu);
  const auto gpu_i = static_cast<std::size_t>(gpu);

  // Earliest-finish dispatch over the two workers (DART's load balancer).
  double free_cpu = 0.0, free_gpu = 0.0;
  exec::CompiledPlanBuilder builder(eval);
  for (std::size_t i = 0; i < eval.num_models(); ++i) {
    const Model& m = eval.model(i);
    const std::size_t n = m.num_layers();
    const std::size_t slot = builder.add_slot(i);
    if (n == 0) continue;
    const double on_cpu = eval.table(i).exec_ms(cpu_i, 0, n - 1);
    const double on_gpu = eval.table(i).exec_ms(gpu_i, 0, n - 1);
    const bool pick_cpu = free_cpu + on_cpu <= free_gpu + on_gpu;
    (pick_cpu ? free_cpu : free_gpu) += pick_cpu ? on_cpu : on_gpu;
    builder.add_range(slot, 0, pick_cpu ? cpu_i : gpu_i, 0, n);
  }
  return simulate(soc, tasks_from_compiled(builder.build()), {});
}

}  // namespace h2p
