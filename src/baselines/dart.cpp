#include "baselines/dart.h"

#include <stdexcept>

#include "sim/pipeline_sim.h"

namespace h2p {

Timeline run_dart(const StaticEvaluator& eval) {
  const Soc& soc = eval.soc();
  const int cpu = soc.find(ProcKind::kCpuBig);
  const int gpu = soc.find(ProcKind::kGpu);
  if (cpu < 0 || gpu < 0) {
    throw std::runtime_error("run_dart: Soc lacks CPU big cluster or GPU");
  }
  const auto cpu_i = static_cast<std::size_t>(cpu);
  const auto gpu_i = static_cast<std::size_t>(gpu);

  // Earliest-finish dispatch over the two workers (DART's load balancer).
  double free_cpu = 0.0, free_gpu = 0.0;
  std::vector<SimTask> tasks;
  for (std::size_t i = 0; i < eval.num_models(); ++i) {
    const Model& m = eval.model(i);
    const std::size_t n = m.num_layers();
    if (n == 0) continue;
    const double on_cpu = eval.table(i).exec_ms(cpu_i, 0, n - 1);
    const double on_gpu = eval.table(i).exec_ms(gpu_i, 0, n - 1);
    const bool pick_cpu = free_cpu + on_cpu <= free_gpu + on_gpu;
    const std::size_t proc = pick_cpu ? cpu_i : gpu_i;
    (pick_cpu ? free_cpu : free_gpu) += pick_cpu ? on_cpu : on_gpu;

    SimTask t;
    t.model_idx = i;
    t.seq_in_model = 0;
    t.proc_idx = proc;
    t.solo_ms = pick_cpu ? on_cpu : on_gpu;
    t.sensitivity = eval.table(i).mem_sensitivity(proc, 0, n - 1);
    t.intensity = eval.table(i).intensity(proc, 0, n - 1);
    tasks.push_back(t);
  }
  return simulate(soc, std::move(tasks), {});
}

}  // namespace h2p
