#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

namespace h2p::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

[[nodiscard]] const char* to_string(LogLevel level);
/// Parse "debug" | "info" | "warn" | "error" | "off"; nullopt otherwise.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view text);

/// One key-value field of a structured log record.
struct LogField {
  enum class Kind { kNumber, kText, kBool };

  std::string key;
  Kind kind = Kind::kNumber;
  double number = 0.0;
  std::string text;
  bool flag = false;

  LogField(std::string k, double v)
      : key(std::move(k)), kind(Kind::kNumber), number(v) {}
  LogField(std::string k, int v)
      : LogField(std::move(k), static_cast<double>(v)) {}
  LogField(std::string k, long v)
      : LogField(std::move(k), static_cast<double>(v)) {}
  LogField(std::string k, unsigned long v)
      : LogField(std::move(k), static_cast<double>(v)) {}
  LogField(std::string k, unsigned long long v)
      : LogField(std::move(k), static_cast<double>(v)) {}
  LogField(std::string k, std::string v)
      : key(std::move(k)), kind(Kind::kText), text(std::move(v)) {}
  LogField(std::string k, const char* v)
      : key(std::move(k)), kind(Kind::kText), text(v == nullptr ? "" : v) {}
  LogField(std::string k, bool v)
      : key(std::move(k)), kind(Kind::kBool), flag(v) {}
};

/// Structured JSONL event log.  One line per record:
///   {"ts_ms":12.345,"seq":7,"level":"warn","event":"online.prefetch_failed",...}
/// `ts_ms` is wall milliseconds since the Log's construction; `seq` is a
/// monotonic per-Log sequence number so records merged across files and
/// threads during fleet aggregation have a total order even when ts_ms
/// ties (lines are seq-unique, and sorting on seq recovers emission order).
/// Records at or above the current level go to the sink (stderr by default,
/// a file via `set_sink_file`); everything else is a relaxed load and a
/// branch.  Thread-safe: each record is formatted privately and written
/// under one lock, so lines never interleave.
///
/// This replaces the library's previous silent-failure paths (swallowed
/// prefetch exceptions, unexplained fault reactions) — nothing here feeds
/// back into planning or simulation, so logging cannot perturb results.
class Log {
 public:
  Log() : epoch_(std::chrono::steady_clock::now()) {}
  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  /// Process-wide default instance used by the library's instrumentation.
  static Log& global();

  void set_level(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] bool should_log(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed) &&
           level != LogLevel::kOff;
  }

  /// Append records to `path` from now on; throws std::runtime_error when
  /// the file cannot be opened.
  void set_sink_file(const std::string& path);
  /// Redirect to an arbitrary stream (tests); nullptr restores stderr.
  /// The stream is not owned and must outlive the log's use.
  void set_sink_stream(std::ostream* os);

  void emit(LogLevel level, std::string_view event,
            std::initializer_list<LogField> fields = {});

  void debug(std::string_view event,
             std::initializer_list<LogField> fields = {}) {
    emit(LogLevel::kDebug, event, fields);
  }
  void info(std::string_view event,
            std::initializer_list<LogField> fields = {}) {
    emit(LogLevel::kInfo, event, fields);
  }
  void warn(std::string_view event,
            std::initializer_list<LogField> fields = {}) {
    emit(LogLevel::kWarn, event, fields);
  }
  void error(std::string_view event,
             std::initializer_list<LogField> fields = {}) {
    emit(LogLevel::kError, event, fields);
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
  /// Next record's sequence number; claimed with one relaxed fetch_add.
  std::atomic<std::uint64_t> seq_{0};
  /// Default kWarn: warnings and errors surface, chatter does not.
  std::atomic<int> level_{static_cast<int>(LogLevel::kWarn)};
  std::mutex mu_;  // guards the sink
  std::ofstream file_;
  std::ostream* stream_ = nullptr;  // non-owning override; null = stderr
};

}  // namespace h2p::obs
