#include "obs/log.h"

#include <cmath>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace h2p::obs {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no inf/nan; null keeps the line parseable
    return;
  }
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  out += buf;
}

}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view text) {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off") return LogLevel::kOff;
  return std::nullopt;
}

Log& Log::global() {
  static Log log;
  return log;
}

void Log::set_sink_file(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  file_.close();
  file_.clear();
  file_.open(path, std::ios::app);
  if (!file_) throw std::runtime_error("obs::Log: cannot open " + path);
  stream_ = nullptr;
}

void Log::set_sink_stream(std::ostream* os) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_.is_open()) file_.close();
  stream_ = os;
}

void Log::emit(LogLevel level, std::string_view event,
               std::initializer_list<LogField> fields) {
  if (!should_log(level)) return;
  const double ts_ms = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - epoch_)
                           .count() /
                       1.0e6;
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  std::string line;
  line.reserve(96);
  line += "{\"ts_ms\":";
  append_number(line, ts_ms);
  line += ",\"seq\":";
  append_number(line, static_cast<double>(seq));
  line += ",\"level\":\"";
  line += to_string(level);
  line += "\",\"event\":";
  append_escaped(line, event);
  for (const LogField& f : fields) {
    line += ',';
    append_escaped(line, f.key);
    line += ':';
    switch (f.kind) {
      case LogField::Kind::kNumber: append_number(line, f.number); break;
      case LogField::Kind::kText: append_escaped(line, f.text); break;
      case LogField::Kind::kBool: line += f.flag ? "true" : "false"; break;
    }
  }
  line += "}\n";

  std::lock_guard<std::mutex> lock(mu_);
  if (file_.is_open()) {
    file_ << line;
    file_.flush();
  } else if (stream_ != nullptr) {
    (*stream_) << line;
    stream_->flush();
  } else {
    std::fputs(line.c_str(), stderr);
  }
}

}  // namespace h2p::obs
