#include "obs/drift.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace h2p::obs {
namespace {

std::atomic<std::uint64_t> g_next_buffer_id{1};

std::string cell_suffix(std::size_t proc, SliceKind kind, std::size_t bucket) {
  std::string s = "p";
  s += std::to_string(proc);
  s += '.';
  s += to_string(kind);
  s += ".b";
  s += std::to_string(bucket);
  return s;
}

}  // namespace

const char* to_string(SliceKind kind) {
  switch (kind) {
    case SliceKind::kLead: return "lead";
    case SliceKind::kInterior: return "interior";
    case SliceKind::kTail: return "tail";
    case SliceKind::kSolo: return "solo";
  }
  return "?";
}

SliceKind parse_slice_kind(std::string_view text) {
  if (text == "lead") return SliceKind::kLead;
  if (text == "interior") return SliceKind::kInterior;
  if (text == "tail") return SliceKind::kTail;
  if (text == "solo") return SliceKind::kSolo;
  throw std::invalid_argument("parse_slice_kind: unknown kind \"" +
                              std::string(text) + "\"");
}

// ---- SliceBuffer -----------------------------------------------------------

struct SliceBuffer::Chunk {
  static constexpr std::size_t kCapacity = 256;
  std::array<SliceRecord, kCapacity> items;
  /// Published record count; the owner release-stores after writing the
  /// record so an acquiring drainer sees complete items.
  std::atomic<std::size_t> used{0};
  Chunk* prev = nullptr;
};

struct SliceBuffer::ThreadChain {
  std::atomic<Chunk*> head{nullptr};
};

SliceBuffer::SliceBuffer()
    : id_(g_next_buffer_id.fetch_add(1, std::memory_order_relaxed)) {}

SliceBuffer::~SliceBuffer() {
  for (const std::unique_ptr<ThreadChain>& chain : chains_) {
    Chunk* c = chain->head.load(std::memory_order_relaxed);
    while (c != nullptr) {
      Chunk* prev = c->prev;
      delete c;
      c = prev;
    }
  }
}

SliceBuffer::ThreadChain& SliceBuffer::chain_for_current_thread() {
  // Cache keyed by buffer id, not address: ids are never reused, so a stale
  // entry for a destroyed buffer can never alias a new one.
  thread_local std::vector<std::pair<std::uint64_t, ThreadChain*>> cache;
  for (const auto& [id, chain] : cache) {
    if (id == id_) return *chain;
  }
  std::lock_guard<std::mutex> lock(mu_);
  chains_.push_back(std::make_unique<ThreadChain>());
  ThreadChain* chain = chains_.back().get();
  cache.emplace_back(id_, chain);
  return *chain;
}

void SliceBuffer::push(const SliceRecord& rec) {
  ThreadChain& chain = chain_for_current_thread();
  Chunk* head = chain.head.load(std::memory_order_relaxed);
  std::size_t used =
      head != nullptr ? head->used.load(std::memory_order_relaxed)
                      : Chunk::kCapacity;
  if (used == Chunk::kCapacity) {
    Chunk* fresh = new Chunk();
    fresh->prev = head;
    chain.head.store(fresh, std::memory_order_release);
    head = fresh;
    used = 0;
  }
  head->items[used] = rec;
  head->used.store(used + 1, std::memory_order_release);
}

std::vector<SliceRecord> SliceBuffer::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SliceRecord> out;
  std::vector<Chunk*> chunks;
  for (const std::unique_ptr<ThreadChain>& chain : chains_) {
    chunks.clear();
    for (Chunk* c = chain->head.load(std::memory_order_acquire); c != nullptr;
         c = c->prev) {
      chunks.push_back(c);
    }
    // The prev-chain is newest-first; replay oldest-first to preserve the
    // owning thread's push order.
    for (auto it = chunks.rbegin(); it != chunks.rend(); ++it) {
      const std::size_t used = (*it)->used.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < used; ++i) out.push_back((*it)->items[i]);
    }
    for (Chunk* c : chunks) delete c;
    // ThreadChain objects stay alive: pushers cache pointers to them.
    chain->head.store(nullptr, std::memory_order_relaxed);
  }
  return out;
}

std::size_t SliceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const std::unique_ptr<ThreadChain>& chain : chains_) {
    for (Chunk* c = chain->head.load(std::memory_order_acquire); c != nullptr;
         c = c->prev) {
      total += c->used.load(std::memory_order_acquire);
    }
  }
  return total;
}

// ---- calibration report ----------------------------------------------------

double CalibrationReport::mean_abs_rel_err() const {
  if (records == 0) return 0.0;
  double sum = 0.0;
  for (const DriftCell& c : cells) sum += c.sum_abs_rel_err;
  return sum / static_cast<double>(records);
}

CalibrationReport calibration_report(std::span<const SliceRecord> records,
                                     const DriftOptions& options) {
  std::map<std::tuple<std::size_t, std::uint8_t, std::size_t>, DriftCell>
      cells;
  CalibrationReport rep;
  rep.min_samples = options.min_samples;
  for (const SliceRecord& rec : records) {
    const double p = rec.predicted_ms();
    if (!(p > 0.0)) {
      ++rep.skipped;
      continue;
    }
    ++rep.records;
    DriftCell& cell = cells[{rec.proc, static_cast<std::uint8_t>(rec.kind),
                             rec.thermal_bucket}];
    cell.proc = rec.proc;
    cell.kind = rec.kind;
    cell.thermal_bucket = rec.thermal_bucket;
    ++cell.count;
    cell.sum_predicted_ms += p;
    cell.sum_executed_ms += rec.executed_ms();
    const double e = rec.rel_err();
    cell.sum_rel_err += e;
    cell.sum_abs_rel_err += std::fabs(e);
    cell.max_abs_rel_err = std::max(cell.max_abs_rel_err, std::fabs(e));
  }
  rep.cells.reserve(cells.size());
  for (const auto& [key, cell] : cells) rep.cells.push_back(cell);
  return rep;
}

// ---- DriftTracker ----------------------------------------------------------

DriftTracker::DriftTracker(DriftOptions options, Registry* registry, Log* log,
                           Tracer* tracer)
    : options_(options), registry_(registry), log_(log), tracer_(tracer) {}

DriftTracker& DriftTracker::global() {
  static DriftTracker tracker;
  return tracker;
}

std::vector<double> DriftTracker::rel_err_buckets() {
  return {-0.5, -0.25, -0.1, -0.05, -0.02, 0.0,
          0.02, 0.05,  0.1,  0.25,  0.5,   1.0, 2.0, 4.0};
}

void DriftTracker::observe_always(const SliceRecord& rec) {
  std::lock_guard<std::mutex> lock(mu_);
  const double p = rec.predicted_ms();
  if (!(p > 0.0)) {
    ++skipped_;
    return;
  }
  ++records_;
  const double e = rec.rel_err();
  const double a = std::fabs(e);

  const CellKey key{rec.proc, static_cast<std::uint8_t>(rec.kind),
                    rec.thermal_bucket};
  auto it = cells_.find(key);
  if (it == cells_.end()) {
    CellState st;
    st.cell.proc = rec.proc;
    st.cell.kind = rec.kind;
    st.cell.thermal_bucket = rec.thermal_bucket;
    const std::string suffix =
        cell_suffix(rec.proc, rec.kind, rec.thermal_bucket);
    st.hist =
        &registry_->histogram("drift.rel_err." + suffix, rel_err_buckets());
    st.gauge = &registry_->gauge("drift.mean_rel_err." + suffix);
    it = cells_.emplace(key, st).first;
  }
  CellState& st = it->second;
  ++st.cell.count;
  st.cell.sum_predicted_ms += p;
  st.cell.sum_executed_ms += rec.executed_ms();
  st.cell.sum_rel_err += e;
  st.cell.sum_abs_rel_err += a;
  st.cell.max_abs_rel_err = std::max(st.cell.max_abs_rel_err, a);
  st.hist->observe(e);
  st.gauge->set(st.cell.mean_rel_err());
  registry_->counter("drift.records").inc();

  // Windowed detector: EWMA of |rel_err| in arrival order, alert on
  // threshold crossing, hysteresis re-arm.
  ewma_ = ewma_seeded_ ? options_.ewma_alpha * a +
                             (1.0 - options_.ewma_alpha) * ewma_
                       : a;
  ewma_seeded_ = true;
  registry_->gauge("drift.ewma_abs_rel_err").set(ewma_);
  if (records_ < options_.min_samples) return;
  if (!alerting_ && ewma_ > options_.alert_threshold) {
    alerting_ = true;
    ++alerts_;
    registry_->counter("drift.alerts").inc();
    log_->warn("drift.alert",
               {{"window", static_cast<unsigned long long>(rec.window)},
                {"proc", static_cast<unsigned long long>(rec.proc)},
                {"kind", to_string(rec.kind)},
                {"thermal_bucket",
                 static_cast<unsigned long long>(rec.thermal_bucket)},
                {"ewma_abs_rel_err", ewma_},
                {"threshold", options_.alert_threshold},
                {"rel_err", e}});
    tracer_->instant(
        "online.drift_alert",
        {{"window", static_cast<double>(rec.window)},
         {"proc", static_cast<double>(rec.proc)},
         {"kind", to_string(rec.kind)},
         {"ewma_abs_rel_err", ewma_},
         {"threshold", options_.alert_threshold}});
  } else if (alerting_ &&
             ewma_ < options_.rearm_ratio * options_.alert_threshold) {
    alerting_ = false;
  }
}

void DriftTracker::drain(SliceBuffer& buffer) {
  std::vector<SliceRecord> records = buffer.drain();
  std::sort(records.begin(), records.end(),
            [](const SliceRecord& a, const SliceRecord& b) {
              return std::tie(a.window, a.model_idx, a.seq_in_model) <
                     std::tie(b.window, b.model_idx, b.seq_in_model);
            });
  for (const SliceRecord& rec : records) observe_always(rec);
}

std::vector<DriftCell> DriftTracker::cells() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DriftCell> out;
  out.reserve(cells_.size());
  for (const auto& [key, st] : cells_) out.push_back(st.cell);
  return out;
}

CalibrationReport DriftTracker::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  CalibrationReport rep;
  rep.cells.reserve(cells_.size());
  for (const auto& [key, st] : cells_) rep.cells.push_back(st.cell);
  rep.records = records_;
  rep.skipped = skipped_;
  rep.alerts = alerts_;
  rep.ewma_abs_rel_err = ewma_seeded_ ? ewma_ : 0.0;
  rep.min_samples = options_.min_samples;
  return rep;
}

std::uint64_t DriftTracker::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::uint64_t DriftTracker::alerts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alerts_;
}

double DriftTracker::ewma_abs_rel_err() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ewma_seeded_ ? ewma_ : 0.0;
}

void DriftTracker::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  cells_.clear();
  records_ = 0;
  skipped_ = 0;
  alerts_ = 0;
  ewma_ = 0.0;
  ewma_seeded_ = false;
  alerting_ = false;
}

std::vector<PredictedSlice> predicted_from_timeline(const Timeline& timeline) {
  std::vector<PredictedSlice> out;
  out.reserve(timeline.tasks.size());
  for (const TaskRecord& rec : timeline.tasks) {
    out.push_back({rec.start_ms, rec.end_ms});
  }
  return out;
}

// ---- fleet snapshot merging ------------------------------------------------

namespace {

double num_or(const Json& obj, const std::string& key, double fallback) {
  if (!obj.contains(key)) return fallback;
  const Json& v = obj.at(key);
  return v.is_null() ? fallback : v.as_number();
}

/// A calibration report section: either doc["calibration"] (fleet doc), the
/// doc itself when it carries drift cells (a bare --drift-out report), or
/// null.
const Json* calibration_of(const Json& doc) {
  if (doc.contains("calibration")) return &doc.at("calibration");
  if (doc.contains("cells")) return &doc;
  return nullptr;
}

/// Bucket bounds signature of one snapshot histogram entry, for the
/// bounds-must-match check (null le = overflow).
std::vector<double> bounds_of_entry(const Json& entry) {
  std::vector<double> bounds;
  const Json& buckets = entry.at("buckets");
  for (std::size_t i = 0; i + 1 < buckets.size(); ++i) {
    bounds.push_back(buckets.at(i).at("le").as_number());
  }
  return bounds;
}

void merge_histogram_entry(Json& merged, const Json& entry,
                           const std::string& name) {
  if (!merged.contains(name)) {
    merged[name] = entry;
    return;
  }
  Json& have = merged[name];
  const std::vector<double> b0 = bounds_of_entry(have);
  const std::vector<double> b1 = bounds_of_entry(entry);
  if (b0 != b1) {
    throw std::runtime_error("merge_snapshots: histogram \"" + name +
                             "\" has mismatched bucket bounds");
  }
  std::vector<std::uint64_t> counts(b0.size() + 1, 0);
  std::uint64_t count = 0;
  double sum = 0.0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  for (const Json* e : {static_cast<const Json*>(&have), &entry}) {
    const Json& buckets = e->at("buckets");
    for (std::size_t i = 0; i < buckets.size() && i < counts.size(); ++i) {
      counts[i] += static_cast<std::uint64_t>(
          buckets.at(i).at("count").as_number());
    }
    const Json& s = e->at("summary");
    const auto n = static_cast<std::uint64_t>(s.at("count").as_number());
    count += n;
    if (n > 0) {
      sum += num_or(s, "mean", 0.0) * static_cast<double>(n);
      mn = std::min(mn, num_or(s, "min", mn));
      mx = std::max(mx, num_or(s, "max", mx));
    }
  }
  Json out = Json::object();
  out["summary"] =
      summary_to_json(summary_from_buckets(b0, counts, count, sum, mn, mx));
  Json buckets = Json::array();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    Json bucket = Json::object();
    bucket["le"] = i < b0.size() ? Json::number(b0[i]) : Json();
    bucket["count"] = Json::number(static_cast<double>(counts[i]));
    buckets.push_back(std::move(bucket));
  }
  out["buckets"] = std::move(buckets);
  merged[name] = std::move(out);
}

Json cell_to_fleet_json(const DriftCell& cell, std::size_t min_samples) {
  Json out = Json::object();
  out["proc"] = Json::number(static_cast<double>(cell.proc));
  out["kind"] = Json::string(to_string(cell.kind));
  out["thermal_bucket"] =
      Json::number(static_cast<double>(cell.thermal_bucket));
  out["count"] = Json::number(static_cast<double>(cell.count));
  out["sum_predicted_ms"] = Json::number(cell.sum_predicted_ms);
  out["sum_executed_ms"] = Json::number(cell.sum_executed_ms);
  out["sum_rel_err"] = Json::number(cell.sum_rel_err);
  out["sum_abs_rel_err"] = Json::number(cell.sum_abs_rel_err);
  out["max_abs_rel_err"] = Json::number(cell.max_abs_rel_err);
  out["correction"] = Json::number(cell.correction());
  out["confidence"] = Json::number(cell.confidence(min_samples));
  out["mean_rel_err"] = Json::number(cell.mean_rel_err());
  out["mean_abs_rel_err"] = Json::number(cell.mean_abs_rel_err());
  return out;
}

DriftCell cell_from_fleet_json(const Json& j) {
  DriftCell cell;
  cell.proc = static_cast<std::size_t>(j.at("proc").as_number());
  cell.kind = parse_slice_kind(j.at("kind").as_string());
  cell.thermal_bucket =
      static_cast<std::size_t>(j.at("thermal_bucket").as_number());
  cell.count = static_cast<std::uint64_t>(j.at("count").as_number());
  cell.sum_predicted_ms = j.at("sum_predicted_ms").as_number();
  cell.sum_executed_ms = j.at("sum_executed_ms").as_number();
  cell.sum_rel_err = j.at("sum_rel_err").as_number();
  cell.sum_abs_rel_err = j.at("sum_abs_rel_err").as_number();
  cell.max_abs_rel_err = j.at("max_abs_rel_err").as_number();
  return cell;
}

}  // namespace

Json merge_snapshots(std::span<const Json> snapshots) {
  if (snapshots.empty()) {
    throw std::invalid_argument("merge_snapshots: need at least one snapshot");
  }

  double leaves = 0.0;
  Json host;  // last-write
  Json counters = Json::object();
  Json gauges = Json::object();
  Json histograms = Json::object();
  bool any_registry = false;

  // Calibration merged in struct space: cells join on (proc, kind, bucket)
  // with sums added, so a fleet correction equals the correction one giant
  // tracker over all records would compute.
  std::map<std::tuple<std::size_t, std::uint8_t, std::size_t>, DriftCell>
      cal_cells;
  bool any_calibration = false;
  double cal_records = 0.0, cal_skipped = 0.0, cal_alerts = 0.0;
  double cal_ewma = 0.0;
  std::size_t cal_min_samples = DriftOptions{}.min_samples;

  for (const Json& doc : snapshots) {
    if (doc.contains("fleet")) {
      leaves += doc.at("fleet").at("snapshots").as_number();
    } else {
      leaves += 1.0;
    }
    if (doc.contains("host")) host = doc.at("host");
    if (doc.contains("counters")) {
      any_registry = true;
      for (const auto& [name, v] : doc.at("counters").items()) {
        counters[name] = Json::number(num_or(counters, name, 0.0) +
                                      v.as_number());
      }
    }
    if (doc.contains("gauges")) {
      any_registry = true;
      for (const auto& [name, v] : doc.at("gauges").items()) {
        gauges[name] = v;  // last-write wins
      }
    }
    if (doc.contains("histograms")) {
      any_registry = true;
      for (const auto& [name, entry] : doc.at("histograms").items()) {
        merge_histogram_entry(histograms, entry, name);
      }
    }
    if (const Json* cal = calibration_of(doc)) {
      any_calibration = true;
      cal_records += num_or(*cal, "records", 0.0);
      cal_skipped += num_or(*cal, "skipped", 0.0);
      cal_alerts += num_or(*cal, "alerts", 0.0);
      cal_ewma = num_or(*cal, "ewma_abs_rel_err", cal_ewma);  // last-write
      cal_min_samples = static_cast<std::size_t>(
          num_or(*cal, "min_samples", static_cast<double>(cal_min_samples)));
      if (cal->contains("cells")) {
        const Json& cells = cal->at("cells");
        for (std::size_t i = 0; i < cells.size(); ++i) {
          const DriftCell add = cell_from_fleet_json(cells.at(i));
          DriftCell& cell =
              cal_cells[{add.proc, static_cast<std::uint8_t>(add.kind),
                         add.thermal_bucket}];
          cell.proc = add.proc;
          cell.kind = add.kind;
          cell.thermal_bucket = add.thermal_bucket;
          cell.count += add.count;
          cell.sum_predicted_ms += add.sum_predicted_ms;
          cell.sum_executed_ms += add.sum_executed_ms;
          cell.sum_rel_err += add.sum_rel_err;
          cell.sum_abs_rel_err += add.sum_abs_rel_err;
          cell.max_abs_rel_err =
              std::max(cell.max_abs_rel_err, add.max_abs_rel_err);
        }
      }
    }
  }

  Json out = Json::object();
  Json fleet = Json::object();
  fleet["snapshots"] = Json::number(leaves);
  out["fleet"] = std::move(fleet);
  if (!host.is_null()) out["host"] = std::move(host);
  if (any_registry) {
    out["counters"] = std::move(counters);
    out["gauges"] = std::move(gauges);
    out["histograms"] = std::move(histograms);
  }
  if (any_calibration) {
    Json cal = Json::object();
    cal["schema"] = Json::string("h2p.drift/v1");
    cal["records"] = Json::number(cal_records);
    cal["skipped"] = Json::number(cal_skipped);
    cal["alerts"] = Json::number(cal_alerts);
    cal["ewma_abs_rel_err"] = Json::number(cal_ewma);
    cal["min_samples"] =
        Json::number(static_cast<double>(cal_min_samples));
    double sum_abs = 0.0;
    Json cells = Json::array();
    for (const auto& [key, cell] : cal_cells) {
      sum_abs += cell.sum_abs_rel_err;
      cells.push_back(cell_to_fleet_json(cell, cal_min_samples));
    }
    cal["mean_abs_rel_err"] =
        Json::number(cal_records > 0.0 ? sum_abs / cal_records : 0.0);
    cal["cells"] = std::move(cells);
    out["calibration"] = std::move(cal);
  }
  return out;
}

}  // namespace h2p::obs
