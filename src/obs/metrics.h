#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/stats.h"

namespace h2p::obs {

class Registry;

namespace detail {

/// Shard count of every metric: threads are spread round-robin over a fixed
/// set of cache-line-padded slots, so two hot threads rarely contend on one
/// line while a snapshot stays O(kShards) per metric.
inline constexpr std::size_t kShards = 16;

inline std::atomic<std::size_t> g_next_shard{0};

/// Stable shard slot of the calling thread (assigned on first use).
inline std::size_t shard_index() {
  thread_local const std::size_t idx =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> v{0};
};

/// fetch_add for atomic<double> via CAS (no contention in the sharded use).
inline void atomic_add(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
  }
}

inline void atomic_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

inline void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotonic counter.  `inc` is one relaxed fetch_add on the calling
/// thread's shard when the owning registry is enabled, and only the relaxed
/// enabled-load when it is not — safe to leave compiled into hot paths.
class Counter {
 public:
  void inc(std::uint64_t n = 1);
  [[nodiscard]] std::uint64_t value() const;

 private:
  friend class Registry;
  explicit Counter(const Registry* owner) : owner_(owner) {}
  const Registry* owner_;
  std::array<detail::CounterShard, detail::kShards> shards_;
};

/// Last-writer-wins scalar (worker counts, config values, water marks the
/// caller maintains itself).  Not sharded: sets are rare.
class Gauge {
 public:
  void set(double v);
  [[nodiscard]] double value() const;

 private:
  friend class Registry;
  explicit Gauge(const Registry* owner) : owner_(owner) {}
  const Registry* owner_;
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket latency histogram.  Bucket bounds are ascending upper
/// bounds; one implicit overflow bucket catches everything above the last.
/// `observe` touches only the calling thread's shard (bucket + count + sum
/// + min/max, all relaxed); disabled, it is the enabled-load alone.
class Histogram {
 public:
  void observe(double v);
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Aggregated counts, bounds().size() + 1 entries (last = overflow).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  /// util/stats Summary with percentiles interpolated inside buckets (the
  /// same shape `summarize` yields on raw samples, so both serialize with
  /// `summary_to_json`).
  [[nodiscard]] Summary summary() const;

 private:
  friend class Registry;
  friend class ScopedLatency;
  Histogram(const Registry* owner, std::vector<double> bounds);

  struct alignas(64) Scalars {
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  };

  const Registry* owner_;
  std::vector<double> bounds_;
  std::size_t num_buckets_;  // bounds_.size() + 1
  /// Shard-major flat layout so the per-thread slice is contiguous.
  std::vector<detail::CounterShard> buckets_;
  std::array<Scalars, detail::kShards> scalars_;
};

/// Registry of named metrics.  Registration (`counter`/`gauge`/`histogram`)
/// takes a mutex and is meant for cold paths or cached references
/// (`static obs::Counter& c = obs::Registry::global().counter("...")`);
/// handles stay valid for the registry's lifetime — `reset` zeroes values
/// but never invalidates them.  Disabled (the default) every metric
/// operation is a relaxed load and a branch, so instrumentation can stay
/// compiled into release binaries.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide default instance used by the library's instrumentation.
  static Registry& global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Bounds must be strictly ascending; empty uses default_latency_buckets.
  /// Re-registering an existing name returns the existing histogram (the
  /// bounds argument is ignored then).
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  /// Exponential millisecond buckets 0.001 .. 8192 (doubling).
  static std::vector<double> default_latency_buckets();

  /// Aggregated values of every registered metric plus a `host` block
  /// (cpu count, H2P_THREADS) so snapshots are self-describing about the
  /// machine that recorded them.
  [[nodiscard]] Json snapshot() const;

  /// Zero all metric values.  Registered handles stay valid.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::atomic<bool> enabled_{false};
};

/// RAII latency sample: observes elapsed wall milliseconds into a histogram
/// at scope exit.  Free when the owning registry is disabled at entry.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& h);
  ~ScopedLatency();
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* h_ = nullptr;
  std::chrono::steady_clock::time_point t0_;
};

/// `host` block shared by Registry::snapshot and the bench JSON header:
/// {"cpus": hardware_concurrency, "h2p_threads": env value or 0}.
[[nodiscard]] Json host_info_json();

/// Summary reconstructed from fixed-bucket state: percentiles interpolated
/// inside the bucket containing the rank (first bucket from 0 or the
/// observed min when tighter, overflow pinned to the observed max).  This is
/// the one interpolation shared by `Histogram::summary()` and fleet snapshot
/// merging (obs/drift.h), so a merged histogram reports the same percentiles
/// a single registry with the combined observations would.  `counts` has
/// bounds.size() + 1 entries; stddev is not recoverable and stays 0.
[[nodiscard]] Summary summary_from_buckets(
    const std::vector<double>& bounds,
    const std::vector<std::uint64_t>& counts, std::uint64_t count, double sum,
    double min, double max);

// ---- hot-path inline bodies -----------------------------------------------

inline void Counter::inc(std::uint64_t n) {
  if (!owner_->enabled()) return;
  shards_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
}

inline void Gauge::set(double v) {
  if (!owner_->enabled()) return;
  v_.store(v, std::memory_order_relaxed);
}

inline void Histogram::observe(double v) {
  if (!owner_->enabled()) return;
  std::size_t b = 0;
  while (b < bounds_.size() && v > bounds_[b]) ++b;
  const std::size_t shard = detail::shard_index();
  buckets_[shard * num_buckets_ + b].v.fetch_add(1, std::memory_order_relaxed);
  Scalars& s = scalars_[shard];
  s.count.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(s.sum, v);
  detail::atomic_min(s.min, v);
  detail::atomic_max(s.max, v);
}

}  // namespace h2p::obs
