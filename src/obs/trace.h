#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace h2p::obs {

/// One key-value annotation on a span or instant event.
struct TraceArg {
  std::string key;
  bool is_number = false;
  double number = 0.0;
  std::string text;

  TraceArg(std::string k, double v)
      : key(std::move(k)), is_number(true), number(v) {}
  TraceArg(std::string k, std::string v)
      : key(std::move(k)), text(std::move(v)) {}
  TraceArg(std::string k, const char* v)
      : key(std::move(k)), text(v == nullptr ? "" : v) {}
};

/// One recorded event.  `track` is a per-thread row index in recording
/// order; `start_us`/`dur_us` are wall microseconds since the tracer's
/// epoch.  An instant event has dur_us 0 and `instant` set.
struct TraceEvent {
  std::string name;
  std::uint32_t track = 0;
  double start_us = 0.0;
  double dur_us = 0.0;
  bool instant = false;
  std::vector<TraceArg> args;
};

/// Wall-clock span collector for the host side (planner, plan cache, online
/// loop, thread pool, runtime executor).  Each host thread gets its own
/// track, lazily on first record; tracks map to Perfetto tids when the
/// buffer is merged with the DES timeline into one chrome-trace file
/// (sim/chrome_trace.h).
///
/// Disabled (the default), `Span` construction is a relaxed load and a
/// branch and nothing is recorded.  Recording takes a mutex — spans mark
/// phases (a planner pass, a pool job, a serving-window step), not
/// per-event DES work, so the rate is low.  Instrumentation is strictly
/// observational: nothing planned or simulated ever reads the tracer, so
/// enabling it cannot perturb plan output (asserted by the determinism
/// suites).
class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Process-wide default instance used by the library's instrumentation.
  static Tracer& global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drop all events and track registrations (the epoch is kept).
  void clear();

  /// Label the calling thread's trace row ("online-loop",
  /// "executor-worker-2", ...).  No-op while disabled.
  void name_current_thread(const std::string& name);

  /// Wall microseconds since the tracer's epoch.
  [[nodiscard]] double now_us() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
               .count() /
           1.0e3;
  }

  /// Record a completed span on the calling thread's track.  No-op while
  /// disabled.
  void record(std::string name, double start_us, double dur_us,
              std::vector<TraceArg> args = {});

  /// Record a zero-duration instant event (cache decisions, fault edges).
  void instant(std::string name, std::vector<TraceArg> args = {});

  [[nodiscard]] std::vector<TraceEvent> events() const;
  /// track index -> explicit name; unnamed tracks get a generic label at
  /// export time.
  [[nodiscard]] std::map<std::uint32_t, std::string> track_names() const;

 private:
  std::uint32_t track_for_current_thread_locked();

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceEvent> events_;
  std::map<std::thread::id, std::uint32_t> track_of_thread_;
  std::map<std::uint32_t, std::string> track_names_;
  std::uint32_t next_track_ = 0;
};

/// RAII span: captures the start time at construction, records on
/// destruction.  When the tracer is disabled at construction the span is
/// inert (args are dropped without allocating).
class Span {
 public:
  explicit Span(const char* name) : Span(Tracer::global(), name) {}
  Span(Tracer& tracer, const char* name) {
    if (!tracer.enabled()) return;
    tracer_ = &tracer;
    name_ = name;
    start_us_ = tracer.now_us();
  }
  ~Span() {
    if (tracer_ == nullptr) return;
    tracer_->record(name_, start_us_, tracer_->now_us() - start_us_,
                    std::move(args_));
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void arg(std::string key, double v) {
    if (tracer_ != nullptr) args_.emplace_back(std::move(key), v);
  }
  void arg(std::string key, std::string v) {
    if (tracer_ != nullptr) args_.emplace_back(std::move(key), std::move(v));
  }
  void arg(std::string key, const char* v) {
    if (tracer_ != nullptr) args_.emplace_back(std::move(key), v);
  }

 private:
  Tracer* tracer_ = nullptr;
  const char* name_ = "";
  double start_us_ = 0.0;
  std::vector<TraceArg> args_;
};

}  // namespace h2p::obs
