#include "obs/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <thread>

namespace h2p::obs {

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const detail::CounterShard& s : shards_) {
    total += s.v.load(std::memory_order_relaxed);
  }
  return total;
}

double Gauge::value() const { return v_.load(std::memory_order_relaxed); }

Histogram::Histogram(const Registry* owner, std::vector<double> bounds)
    : owner_(owner),
      bounds_(std::move(bounds)),
      num_buckets_(bounds_.size() + 1),
      buckets_(detail::kShards * num_buckets_) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument(
          "obs::Histogram: bucket bounds must be strictly ascending");
    }
  }
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const Scalars& s : scalars_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const Scalars& s : scalars_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(num_buckets_, 0);
  for (std::size_t shard = 0; shard < detail::kShards; ++shard) {
    for (std::size_t b = 0; b < num_buckets_; ++b) {
      out[b] += buckets_[shard * num_buckets_ + b].v.load(
          std::memory_order_relaxed);
    }
  }
  return out;
}

Summary Histogram::summary() const {
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  for (const Scalars& sc : scalars_) {
    mn = std::min(mn, sc.min.load(std::memory_order_relaxed));
    mx = std::max(mx, sc.max.load(std::memory_order_relaxed));
  }
  return summary_from_buckets(bounds_, bucket_counts(), count(), sum(), mn,
                              mx);
}

Summary summary_from_buckets(const std::vector<double>& bounds,
                             const std::vector<std::uint64_t>& counts,
                             std::uint64_t count, double sum, double min,
                             double max) {
  Summary s;
  s.count = count;
  if (s.count == 0) return s;
  s.mean = sum / static_cast<double>(s.count);
  const double mn = min;
  const double mx = max;
  s.min = mn;
  s.max = mx;

  const auto pct = [&](double q) {
    const double rank = q * static_cast<double>(s.count);
    double below = 0.0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
      const double here = static_cast<double>(counts[b]);
      if (below + here >= rank && here > 0.0) {
        if (b == counts.size() - 1) return mx;
        const double hi = bounds[b];
        double lo = b == 0 ? std::min(0.0, mn) : bounds[b - 1];
        lo = std::max(lo, mn);
        const double frac = std::clamp((rank - below) / here, 0.0, 1.0);
        return std::clamp(lo + (hi - lo) * frac, mn, mx);
      }
      below += here;
    }
    return mx;
  };
  s.p50 = pct(0.50);
  s.p90 = pct(0.90);
  s.p95 = pct(0.95);
  s.p99 = pct(0.99);
  // stddev is not recoverable from (count, sum, buckets); left 0.
  return s;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(this)))
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(this))).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = default_latency_buckets();
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(
                                new Histogram(this, std::move(bounds))))
             .first;
  }
  return *it->second;
}

std::vector<double> Registry::default_latency_buckets() {
  std::vector<double> bounds;
  for (double b = 0.001; b <= 8192.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

Json host_info_json() {
  Json host = Json::object();
  host["cpus"] =
      Json::number(static_cast<double>(std::thread::hardware_concurrency()));
  long threads = 0;
  if (const char* env = std::getenv("H2P_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) threads = v;
  }
  host["h2p_threads"] = Json::number(static_cast<double>(threads));
  return host;
}

Json Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json out = Json::object();
  out["host"] = host_info_json();

  Json counters = Json::object();
  for (const auto& [name, c] : counters_) {
    counters[name] = Json::number(static_cast<double>(c->value()));
  }
  out["counters"] = std::move(counters);

  Json gauges = Json::object();
  for (const auto& [name, g] : gauges_) {
    gauges[name] = Json::number(g->value());
  }
  out["gauges"] = std::move(gauges);

  Json histograms = Json::object();
  for (const auto& [name, h] : histograms_) {
    Json entry = Json::object();
    entry["summary"] = summary_to_json(h->summary());
    Json buckets = Json::array();
    const std::vector<std::uint64_t> counts = h->bucket_counts();
    for (std::size_t b = 0; b < counts.size(); ++b) {
      Json bucket = Json::object();
      // The overflow bucket has no finite bound; serialize it as null.
      bucket["le"] = b < h->bounds().size() ? Json::number(h->bounds()[b])
                                            : Json();
      bucket["count"] = Json::number(static_cast<double>(counts[b]));
      buckets.push_back(std::move(bucket));
    }
    entry["buckets"] = std::move(buckets);
    histograms[name] = std::move(entry);
  }
  out["histograms"] = std::move(histograms);
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    for (detail::CounterShard& s : c->shards_) {
      s.v.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& [name, g] : gauges_) {
    g->v_.store(0.0, std::memory_order_relaxed);
  }
  for (auto& [name, h] : histograms_) {
    for (detail::CounterShard& s : h->buckets_) {
      s.v.store(0, std::memory_order_relaxed);
    }
    for (Histogram::Scalars& s : h->scalars_) {
      s.count.store(0, std::memory_order_relaxed);
      s.sum.store(0.0, std::memory_order_relaxed);
      s.min.store(std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
      s.max.store(-std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
    }
  }
}

ScopedLatency::ScopedLatency(Histogram& h) {
  if (!h.owner_->enabled()) return;
  h_ = &h;
  t0_ = std::chrono::steady_clock::now();
}

ScopedLatency::~ScopedLatency() {
  if (h_ == nullptr) return;
  const double ms = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0_)
                        .count() /
                    1.0e6;
  h_->observe(ms);
}

}  // namespace h2p::obs
