#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/trace.h"
#include "util/json.h"

namespace h2p::obs {

/// Position of a slice in its model's chain — the "slice-kind" axis of the
/// residual statistics.  Lead slices see cold queues and arrival jitter,
/// tail slices accumulate upstream drift, interior slices isolate the pure
/// per-slice model error; a model compiled as a single slice is kSolo.
enum class SliceKind : std::uint8_t {
  kLead = 0,
  kInterior = 1,
  kTail = 2,
  kSolo = 3,
};

[[nodiscard]] const char* to_string(SliceKind kind);
/// Parse "lead" | "interior" | "tail" | "solo"; throws std::invalid_argument
/// otherwise (the strings come from our own serialized reports).
[[nodiscard]] SliceKind parse_slice_kind(std::string_view text);

/// Classify seq `seq_in_model` of a model whose last slice is `last_seq`.
[[nodiscard]] inline SliceKind classify_slice(std::size_t seq_in_model,
                                              std::size_t last_seq) {
  if (last_seq == 0) return SliceKind::kSolo;
  if (seq_in_model == 0) return SliceKind::kLead;
  if (seq_in_model >= last_seq) return SliceKind::kTail;
  return SliceKind::kInterior;
}

/// One slice's predicted-vs-executed evidence.  "Predicted" is what the
/// arbitrating DES promised when the plan was chosen (window-isolated, no
/// faults); "executed" is what actually happened — the final streaming
/// timeline in `run_online`, or wall-clock times rescaled to modeled
/// milliseconds in `runtime/executor`.  Everything else is context the
/// calibration loop conditions on: where it ran, how hot the SoC was, how
/// degraded the bus was, and whether a correlated weather event covered it.
struct SliceRecord {
  std::size_t window = 0;
  std::size_t model_idx = 0;
  std::size_t seq_in_model = 0;
  std::size_t proc = 0;  // planned processor
  SliceKind kind = SliceKind::kSolo;
  std::size_t thermal_bucket = 0;
  double bus_factor = 1.0;
  double predicted_start_ms = 0.0;
  double predicted_finish_ms = 0.0;
  double executed_start_ms = 0.0;
  double executed_finish_ms = 0.0;
  bool migrated = false;   // executed on a different processor than planned
  int weather_idx = -1;    // covering WeatherEvent index, -1 = clear skies

  [[nodiscard]] double predicted_ms() const {
    return predicted_finish_ms - predicted_start_ms;
  }
  [[nodiscard]] double executed_ms() const {
    return executed_finish_ms - executed_start_ms;
  }
  /// Signed relative duration error, (executed - predicted) / predicted.
  /// Positive = the model was optimistic.  Records with a non-positive
  /// predicted duration are skipped by the tracker (nothing to divide by).
  [[nodiscard]] double rel_err() const {
    const double p = predicted_ms();
    return p > 0.0 ? (executed_ms() - p) / p : 0.0;
  }
};

/// Lock-free per-thread buffer of SliceRecords.  Each pushing thread owns a
/// private chain of fixed-size chunks: `push` writes the record then
/// release-publishes the new count, so the drainer (acquire) always sees
/// fully written records and never blocks a worker.  The only lock is on
/// the cold paths — first push of a new thread registers its chain, and
/// `drain` walks all chains.  `drain` additionally resets the chains, so it
/// must not run concurrently with pushes (the executor drains after its
/// workers have joined).
class SliceBuffer {
 public:
  SliceBuffer();
  ~SliceBuffer();
  SliceBuffer(const SliceBuffer&) = delete;
  SliceBuffer& operator=(const SliceBuffer&) = delete;

  /// Wait-free for the owning thread except on chunk rollover (allocation).
  void push(const SliceRecord& rec);

  /// Collect every published record (per-thread push order preserved,
  /// threads in registration order) and reset the buffer.  Requires pushers
  /// quiesced.
  [[nodiscard]] std::vector<SliceRecord> drain();

  /// Published records without draining (same quiescence caveat as drain).
  [[nodiscard]] std::size_t size() const;

 private:
  struct Chunk;
  struct ThreadChain;

  ThreadChain& chain_for_current_thread();

  const std::uint64_t id_;  // distinguishes reincarnations at one address
  mutable std::mutex mu_;   // guards chains_ registration and drain
  std::vector<std::unique_ptr<ThreadChain>> chains_;
};

/// Windowed drift-detector configuration.  The detector keeps an EWMA of
/// |rel_err| over records in arrival order; once at least `min_samples`
/// records have been seen and the EWMA crosses `alert_threshold`, it fires
/// one alert (obs::Log warning + `online.drift_alert` trace instant +
/// `drift.alerts` counter) and re-arms only after the EWMA falls back
/// under `rearm_ratio * alert_threshold` — hysteresis against alert storms.
struct DriftOptions {
  double ewma_alpha = 0.1;
  double alert_threshold = 0.25;
  double rearm_ratio = 0.8;
  std::size_t min_samples = 8;
};

/// Streaming residual aggregate of one (processor × slice-kind ×
/// thermal-bucket) cell.  Sums (not means) so cells merge exactly during
/// fleet aggregation.
struct DriftCell {
  std::size_t proc = 0;
  SliceKind kind = SliceKind::kSolo;
  std::size_t thermal_bucket = 0;
  std::uint64_t count = 0;
  double sum_predicted_ms = 0.0;
  double sum_executed_ms = 0.0;
  double sum_rel_err = 0.0;
  double sum_abs_rel_err = 0.0;
  double max_abs_rel_err = 0.0;

  /// Observed/predicted duration ratio — the multiplicative correction a
  /// calibration pass would apply to this cell's cost descriptors.
  [[nodiscard]] double correction() const {
    return sum_predicted_ms > 0.0 ? sum_executed_ms / sum_predicted_ms : 1.0;
  }
  [[nodiscard]] double mean_rel_err() const {
    return count > 0 ? sum_rel_err / static_cast<double>(count) : 0.0;
  }
  [[nodiscard]] double mean_abs_rel_err() const {
    return count > 0 ? sum_abs_rel_err / static_cast<double>(count) : 0.0;
  }
  /// Confidence in the correction from the sample count alone:
  /// n / (n + k), k = DriftOptions::min_samples (0 samples → 0, → 1 as
  /// evidence accumulates).
  [[nodiscard]] double confidence(std::size_t k) const {
    return static_cast<double>(count) /
           (static_cast<double>(count) + static_cast<double>(k));
  }
};

/// Calibration scorecard: the per-descriptor correction suggestions plus
/// the run-level drift aggregates they came from.  Serialized by
/// core/serialize (`calibration_report_to_json`, schema "h2p.drift/v1").
struct CalibrationReport {
  std::vector<DriftCell> cells;  // sorted by (proc, kind, thermal_bucket)
  std::uint64_t records = 0;
  std::uint64_t skipped = 0;  // non-positive predicted duration
  std::uint64_t alerts = 0;
  double ewma_abs_rel_err = 0.0;
  std::size_t min_samples = 0;  // the confidence prior k used above

  [[nodiscard]] double mean_abs_rel_err() const;
};

/// Pure scorecard construction from raw records — exact, deterministic
/// arithmetic (a cell's correction is literally sum(executed)/sum(predicted)
/// over its records), so tests can assert ratios to the bit.  Does not run
/// the alert detector; `alerts`/`ewma_abs_rel_err` stay 0.
[[nodiscard]] CalibrationReport calibration_report(
    std::span<const SliceRecord> records, const DriftOptions& options = {});

/// Streaming drift tracker.  `observe` updates the record's
/// (proc × kind × bucket) cell, feeds the per-cell residual histogram
/// (`drift.rel_err.p<P>.<kind>.b<B>`) and signed-error gauge
/// (`drift.mean_rel_err.p<P>.<kind>.b<B>`) in the target Registry, and
/// advances the EWMA alert detector.  Disabled (the default for the global
/// instance), `observe` is one relaxed load and a branch — same contract as
/// the Registry's metrics, so capture hooks stay compiled into hot paths.
/// All updates are strictly observational: nothing planned, simulated, or
/// executed reads the tracker back.
///
/// Thread-safe; `run_online` uses a private always-enabled instance per run
/// so its alert sequence is deterministic and independent of other runs.
class DriftTracker {
 public:
  explicit DriftTracker(DriftOptions options = {},
                        Registry* registry = &Registry::global(),
                        Log* log = &Log::global(),
                        Tracer* tracer = &Tracer::global());

  DriftTracker(const DriftTracker&) = delete;
  DriftTracker& operator=(const DriftTracker&) = delete;

  /// Process-wide instance for long-lived executor-style capture.
  static DriftTracker& global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  void observe(const SliceRecord& rec) {
    if (!enabled()) return;
    observe_always(rec);
  }

  /// Observe regardless of the enabled gate (run_online's private tracker).
  void observe_always(const SliceRecord& rec);

  /// Drain a capture buffer into the tracker.  Records are sorted by
  /// (window, model, seq) first so the alert sequence is deterministic even
  /// when worker threads raced on push order.
  void drain(SliceBuffer& buffer);

  [[nodiscard]] std::vector<DriftCell> cells() const;
  [[nodiscard]] CalibrationReport report() const;
  [[nodiscard]] std::uint64_t records() const;
  [[nodiscard]] std::uint64_t alerts() const;
  [[nodiscard]] double ewma_abs_rel_err() const;

  /// Clear residual state (cells, EWMA, alert latch).  Registered metric
  /// handles in the Registry keep their accumulated values.
  void reset();

  /// Residual histogram bounds: symmetric signed relative error, dense
  /// around 0 where a calibrated model should live.
  static std::vector<double> rel_err_buckets();

 private:
  struct CellState {
    DriftCell cell;
    Histogram* hist = nullptr;
    Gauge* gauge = nullptr;
  };
  using CellKey = std::tuple<std::size_t, std::uint8_t, std::size_t>;

  DriftOptions options_;
  Registry* registry_;
  Log* log_;
  Tracer* tracer_;
  std::atomic<bool> enabled_{false};

  mutable std::mutex mu_;
  std::map<CellKey, CellState> cells_;
  std::uint64_t records_ = 0;
  std::uint64_t skipped_ = 0;
  std::uint64_t alerts_ = 0;
  double ewma_ = 0.0;
  bool ewma_seeded_ = false;
  bool alerting_ = false;
};

/// Per-job DES prediction handed to the executor's capture hook.
struct PredictedSlice {
  double start_ms = 0.0;
  double finish_ms = 0.0;
};

/// Predicted start/finish per task index, lifted from a DES timeline (the
/// arbitrating simulation of the same compiled plan the executor runs).
[[nodiscard]] std::vector<PredictedSlice> predicted_from_timeline(
    const Timeline& timeline);

/// Everything the executor needs to emit SliceRecords without computing
/// anything on the worker threads beyond one push: the buffer, the per-job
/// predictions, and the run context stamped onto every record.
struct DriftCapture {
  SliceBuffer* buffer = nullptr;
  std::vector<PredictedSlice> predicted;  // indexed by job
  std::size_t window = 0;
  std::size_t thermal_bucket = 0;
  double bus_factor = 1.0;
  /// Multiplier converting executed wall milliseconds to modeled
  /// milliseconds (pair with the executor by setting 1000 / us_per_sim_ms).
  double wall_ms_to_model = 1.0;
};

/// Merge N registry/drift JSON snapshots into one fleet report:
/// counters sum, gauges last-write, histogram buckets sum element-wise
/// (bounds must match — throws std::runtime_error otherwise) with the
/// summary recomputed from the merged buckets via `summary_from_buckets`,
/// calibration cells join on (proc, kind, bucket) with their sums added,
/// `host` last-write, and `fleet.snapshots` counts the merged leaves.
/// Associative by construction, so shard-local partial merges compose.
[[nodiscard]] Json merge_snapshots(std::span<const Json> snapshots);

}  // namespace h2p::obs
