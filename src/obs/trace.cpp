#include "obs/trace.h"

namespace h2p::obs {

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  track_of_thread_.clear();
  track_names_.clear();
  next_track_ = 0;
}

std::uint32_t Tracer::track_for_current_thread_locked() {
  const std::thread::id me = std::this_thread::get_id();
  const auto it = track_of_thread_.find(me);
  if (it != track_of_thread_.end()) return it->second;
  const std::uint32_t track = next_track_++;
  track_of_thread_.emplace(me, track);
  return track;
}

void Tracer::name_current_thread(const std::string& name) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  track_names_[track_for_current_thread_locked()] = name;
}

void Tracer::record(std::string name, double start_us, double dur_us,
                    std::vector<TraceArg> args) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent ev;
  ev.name = std::move(name);
  ev.track = track_for_current_thread_locked();
  ev.start_us = start_us;
  ev.dur_us = dur_us;
  ev.args = std::move(args);
  events_.push_back(std::move(ev));
}

void Tracer::instant(std::string name, std::vector<TraceArg> args) {
  if (!enabled()) return;
  const double t = now_us();
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent ev;
  ev.name = std::move(name);
  ev.track = track_for_current_thread_locked();
  ev.start_us = t;
  ev.instant = true;
  ev.args = std::move(args);
  events_.push_back(std::move(ev));
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::map<std::uint32_t, std::string> Tracer::track_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  return track_names_;
}

}  // namespace h2p::obs
