file(REMOVE_RECURSE
  "CMakeFiles/h2p_cli.dir/h2p_cli.cpp.o"
  "CMakeFiles/h2p_cli.dir/h2p_cli.cpp.o.d"
  "h2p_cli"
  "h2p_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2p_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
