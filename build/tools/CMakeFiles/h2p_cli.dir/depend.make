# Empty dependencies file for h2p_cli.
# This may be replaced when dependencies are built.
