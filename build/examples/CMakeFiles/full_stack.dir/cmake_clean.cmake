file(REMOVE_RECURSE
  "CMakeFiles/full_stack.dir/full_stack.cpp.o"
  "CMakeFiles/full_stack.dir/full_stack.cpp.o.d"
  "full_stack"
  "full_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
