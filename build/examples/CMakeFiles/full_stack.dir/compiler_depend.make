# Empty compiler generated dependencies file for full_stack.
# This may be replaced when dependencies are built.
