# Empty compiler generated dependencies file for planner_playground.
# This may be replaced when dependencies are built.
