file(REMOVE_RECURSE
  "CMakeFiles/planner_playground.dir/planner_playground.cpp.o"
  "CMakeFiles/planner_playground.dir/planner_playground.cpp.o.d"
  "planner_playground"
  "planner_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planner_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
