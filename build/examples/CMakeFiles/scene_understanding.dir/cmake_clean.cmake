file(REMOVE_RECURSE
  "CMakeFiles/scene_understanding.dir/scene_understanding.cpp.o"
  "CMakeFiles/scene_understanding.dir/scene_understanding.cpp.o.d"
  "scene_understanding"
  "scene_understanding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scene_understanding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
