# Empty dependencies file for scene_understanding.
# This may be replaced when dependencies are built.
