file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_thermal.dir/bench_fig11_thermal.cpp.o"
  "CMakeFiles/bench_fig11_thermal.dir/bench_fig11_thermal.cpp.o.d"
  "bench_fig11_thermal"
  "bench_fig11_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
