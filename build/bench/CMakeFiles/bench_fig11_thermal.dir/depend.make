# Empty dependencies file for bench_fig11_thermal.
# This may be replaced when dependencies are built.
