# Empty compiler generated dependencies file for bench_fig1_solo_latency.
# This may be replaced when dependencies are built.
