# Empty dependencies file for bench_fig2_contention_rank.
# This may be replaced when dependencies are built.
