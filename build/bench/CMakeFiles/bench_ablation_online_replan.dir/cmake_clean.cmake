file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_online_replan.dir/bench_ablation_online_replan.cpp.o"
  "CMakeFiles/bench_ablation_online_replan.dir/bench_ablation_online_replan.cpp.o.d"
  "bench_ablation_online_replan"
  "bench_ablation_online_replan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_online_replan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
