# Empty dependencies file for bench_ablation_online_replan.
# This may be replaced when dependencies are built.
