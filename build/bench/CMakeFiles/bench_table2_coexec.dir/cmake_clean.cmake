file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_coexec.dir/bench_table2_coexec.cpp.o"
  "CMakeFiles/bench_table2_coexec.dir/bench_table2_coexec.cpp.o.d"
  "bench_table2_coexec"
  "bench_table2_coexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_coexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
