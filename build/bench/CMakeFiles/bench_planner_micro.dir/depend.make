# Empty dependencies file for bench_planner_micro.
# This may be replaced when dependencies are built.
