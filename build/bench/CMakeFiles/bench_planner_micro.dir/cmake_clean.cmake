file(REMOVE_RECURSE
  "CMakeFiles/bench_planner_micro.dir/bench_planner_micro.cpp.o"
  "CMakeFiles/bench_planner_micro.dir/bench_planner_micro.cpp.o.d"
  "bench_planner_micro"
  "bench_planner_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_planner_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
