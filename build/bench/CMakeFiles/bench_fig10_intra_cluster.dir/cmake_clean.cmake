file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_intra_cluster.dir/bench_fig10_intra_cluster.cpp.o"
  "CMakeFiles/bench_fig10_intra_cluster.dir/bench_fig10_intra_cluster.cpp.o.d"
  "bench_fig10_intra_cluster"
  "bench_fig10_intra_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_intra_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
