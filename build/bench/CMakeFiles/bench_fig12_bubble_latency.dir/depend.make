# Empty dependencies file for bench_fig12_bubble_latency.
# This may be replaced when dependencies are built.
