# Empty compiler generated dependencies file for h2p.
# This may be replaced when dependencies are built.
