file(REMOVE_RECURSE
  "libh2p.a"
)
