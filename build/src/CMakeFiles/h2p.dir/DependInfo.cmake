
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/annealing.cpp" "src/CMakeFiles/h2p.dir/baselines/annealing.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/baselines/annealing.cpp.o.d"
  "/root/repo/src/baselines/band.cpp" "src/CMakeFiles/h2p.dir/baselines/band.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/baselines/band.cpp.o.d"
  "/root/repo/src/baselines/dart.cpp" "src/CMakeFiles/h2p.dir/baselines/dart.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/baselines/dart.cpp.o.d"
  "/root/repo/src/baselines/exhaustive.cpp" "src/CMakeFiles/h2p.dir/baselines/exhaustive.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/baselines/exhaustive.cpp.o.d"
  "/root/repo/src/baselines/mnn_serial.cpp" "src/CMakeFiles/h2p.dir/baselines/mnn_serial.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/baselines/mnn_serial.cpp.o.d"
  "/root/repo/src/baselines/pipeit.cpp" "src/CMakeFiles/h2p.dir/baselines/pipeit.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/baselines/pipeit.cpp.o.d"
  "/root/repo/src/baselines/ulayer.cpp" "src/CMakeFiles/h2p.dir/baselines/ulayer.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/baselines/ulayer.cpp.o.d"
  "/root/repo/src/contention/classifier.cpp" "src/CMakeFiles/h2p.dir/contention/classifier.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/contention/classifier.cpp.o.d"
  "/root/repo/src/contention/contention_model.cpp" "src/CMakeFiles/h2p.dir/contention/contention_model.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/contention/contention_model.cpp.o.d"
  "/root/repo/src/contention/linalg.cpp" "src/CMakeFiles/h2p.dir/contention/linalg.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/contention/linalg.cpp.o.d"
  "/root/repo/src/contention/ridge.cpp" "src/CMakeFiles/h2p.dir/contention/ridge.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/contention/ridge.cpp.o.d"
  "/root/repo/src/core/bubbles.cpp" "src/CMakeFiles/h2p.dir/core/bubbles.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/core/bubbles.cpp.o.d"
  "/root/repo/src/core/lap.cpp" "src/CMakeFiles/h2p.dir/core/lap.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/core/lap.cpp.o.d"
  "/root/repo/src/core/mitigation.cpp" "src/CMakeFiles/h2p.dir/core/mitigation.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/core/mitigation.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/CMakeFiles/h2p.dir/core/partition.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/core/partition.cpp.o.d"
  "/root/repo/src/core/plan.cpp" "src/CMakeFiles/h2p.dir/core/plan.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/core/plan.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/CMakeFiles/h2p.dir/core/planner.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/core/planner.cpp.o.d"
  "/root/repo/src/core/search_space.cpp" "src/CMakeFiles/h2p.dir/core/search_space.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/core/search_space.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/CMakeFiles/h2p.dir/core/serialize.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/core/serialize.cpp.o.d"
  "/root/repo/src/core/work_stealing.cpp" "src/CMakeFiles/h2p.dir/core/work_stealing.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/core/work_stealing.cpp.o.d"
  "/root/repo/src/engine/ops.cpp" "src/CMakeFiles/h2p.dir/engine/ops.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/engine/ops.cpp.o.d"
  "/root/repo/src/engine/tensor.cpp" "src/CMakeFiles/h2p.dir/engine/tensor.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/engine/tensor.cpp.o.d"
  "/root/repo/src/engine/tensor_net.cpp" "src/CMakeFiles/h2p.dir/engine/tensor_net.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/engine/tensor_net.cpp.o.d"
  "/root/repo/src/engine/tensor_pipeline.cpp" "src/CMakeFiles/h2p.dir/engine/tensor_pipeline.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/engine/tensor_pipeline.cpp.o.d"
  "/root/repo/src/engine/zoo_nets.cpp" "src/CMakeFiles/h2p.dir/engine/zoo_nets.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/engine/zoo_nets.cpp.o.d"
  "/root/repo/src/models/graph.cpp" "src/CMakeFiles/h2p.dir/models/graph.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/models/graph.cpp.o.d"
  "/root/repo/src/models/layer.cpp" "src/CMakeFiles/h2p.dir/models/layer.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/models/layer.cpp.o.d"
  "/root/repo/src/models/model.cpp" "src/CMakeFiles/h2p.dir/models/model.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/models/model.cpp.o.d"
  "/root/repo/src/models/model_zoo.cpp" "src/CMakeFiles/h2p.dir/models/model_zoo.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/models/model_zoo.cpp.o.d"
  "/root/repo/src/runtime/executor.cpp" "src/CMakeFiles/h2p.dir/runtime/executor.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/runtime/executor.cpp.o.d"
  "/root/repo/src/runtime/kernels.cpp" "src/CMakeFiles/h2p.dir/runtime/kernels.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/runtime/kernels.cpp.o.d"
  "/root/repo/src/sim/chrome_trace.cpp" "src/CMakeFiles/h2p.dir/sim/chrome_trace.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/sim/chrome_trace.cpp.o.d"
  "/root/repo/src/sim/memory_sim.cpp" "src/CMakeFiles/h2p.dir/sim/memory_sim.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/sim/memory_sim.cpp.o.d"
  "/root/repo/src/sim/online.cpp" "src/CMakeFiles/h2p.dir/sim/online.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/sim/online.cpp.o.d"
  "/root/repo/src/sim/pipeline_sim.cpp" "src/CMakeFiles/h2p.dir/sim/pipeline_sim.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/sim/pipeline_sim.cpp.o.d"
  "/root/repo/src/sim/queueing.cpp" "src/CMakeFiles/h2p.dir/sim/queueing.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/sim/queueing.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/h2p.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/sim/trace.cpp.o.d"
  "/root/repo/src/soc/cost_model.cpp" "src/CMakeFiles/h2p.dir/soc/cost_model.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/soc/cost_model.cpp.o.d"
  "/root/repo/src/soc/energy.cpp" "src/CMakeFiles/h2p.dir/soc/energy.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/soc/energy.cpp.o.d"
  "/root/repo/src/soc/memory_governor.cpp" "src/CMakeFiles/h2p.dir/soc/memory_governor.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/soc/memory_governor.cpp.o.d"
  "/root/repo/src/soc/perf_counters.cpp" "src/CMakeFiles/h2p.dir/soc/perf_counters.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/soc/perf_counters.cpp.o.d"
  "/root/repo/src/soc/processor.cpp" "src/CMakeFiles/h2p.dir/soc/processor.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/soc/processor.cpp.o.d"
  "/root/repo/src/soc/profiler.cpp" "src/CMakeFiles/h2p.dir/soc/profiler.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/soc/profiler.cpp.o.d"
  "/root/repo/src/soc/soc.cpp" "src/CMakeFiles/h2p.dir/soc/soc.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/soc/soc.cpp.o.d"
  "/root/repo/src/soc/thermal.cpp" "src/CMakeFiles/h2p.dir/soc/thermal.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/soc/thermal.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/h2p.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/json.cpp" "src/CMakeFiles/h2p.dir/util/json.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/util/json.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/h2p.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/h2p.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/h2p.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/h2p.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
