# Empty compiler generated dependencies file for h2p_tests.
# This may be replaced when dependencies are built.
