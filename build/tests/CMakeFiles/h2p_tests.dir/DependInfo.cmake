
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/h2p_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/batching_test.cpp" "tests/CMakeFiles/h2p_tests.dir/batching_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/batching_test.cpp.o.d"
  "/root/repo/tests/chrome_trace_test.cpp" "tests/CMakeFiles/h2p_tests.dir/chrome_trace_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/chrome_trace_test.cpp.o.d"
  "/root/repo/tests/classifier_test.cpp" "tests/CMakeFiles/h2p_tests.dir/classifier_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/classifier_test.cpp.o.d"
  "/root/repo/tests/contention_model_test.cpp" "tests/CMakeFiles/h2p_tests.dir/contention_model_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/contention_model_test.cpp.o.d"
  "/root/repo/tests/cost_model_test.cpp" "tests/CMakeFiles/h2p_tests.dir/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/cost_model_test.cpp.o.d"
  "/root/repo/tests/coverage_extra_test.cpp" "tests/CMakeFiles/h2p_tests.dir/coverage_extra_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/coverage_extra_test.cpp.o.d"
  "/root/repo/tests/des_invariants_test.cpp" "tests/CMakeFiles/h2p_tests.dir/des_invariants_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/des_invariants_test.cpp.o.d"
  "/root/repo/tests/energy_test.cpp" "tests/CMakeFiles/h2p_tests.dir/energy_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/energy_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/h2p_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/h2p_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/json_test.cpp" "tests/CMakeFiles/h2p_tests.dir/json_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/json_test.cpp.o.d"
  "/root/repo/tests/lap_test.cpp" "tests/CMakeFiles/h2p_tests.dir/lap_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/lap_test.cpp.o.d"
  "/root/repo/tests/layer_test.cpp" "tests/CMakeFiles/h2p_tests.dir/layer_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/layer_test.cpp.o.d"
  "/root/repo/tests/linalg_test.cpp" "tests/CMakeFiles/h2p_tests.dir/linalg_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/linalg_test.cpp.o.d"
  "/root/repo/tests/memory_governor_test.cpp" "tests/CMakeFiles/h2p_tests.dir/memory_governor_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/memory_governor_test.cpp.o.d"
  "/root/repo/tests/memory_sim_test.cpp" "tests/CMakeFiles/h2p_tests.dir/memory_sim_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/memory_sim_test.cpp.o.d"
  "/root/repo/tests/mitigation_test.cpp" "tests/CMakeFiles/h2p_tests.dir/mitigation_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/mitigation_test.cpp.o.d"
  "/root/repo/tests/model_test.cpp" "tests/CMakeFiles/h2p_tests.dir/model_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/model_test.cpp.o.d"
  "/root/repo/tests/model_zoo_test.cpp" "tests/CMakeFiles/h2p_tests.dir/model_zoo_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/model_zoo_test.cpp.o.d"
  "/root/repo/tests/online_test.cpp" "tests/CMakeFiles/h2p_tests.dir/online_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/online_test.cpp.o.d"
  "/root/repo/tests/ops_property_test.cpp" "tests/CMakeFiles/h2p_tests.dir/ops_property_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/ops_property_test.cpp.o.d"
  "/root/repo/tests/ops_test.cpp" "tests/CMakeFiles/h2p_tests.dir/ops_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/ops_test.cpp.o.d"
  "/root/repo/tests/partition_test.cpp" "tests/CMakeFiles/h2p_tests.dir/partition_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/partition_test.cpp.o.d"
  "/root/repo/tests/perf_counters_test.cpp" "tests/CMakeFiles/h2p_tests.dir/perf_counters_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/perf_counters_test.cpp.o.d"
  "/root/repo/tests/pipeline_sim_test.cpp" "tests/CMakeFiles/h2p_tests.dir/pipeline_sim_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/pipeline_sim_test.cpp.o.d"
  "/root/repo/tests/plan_test.cpp" "tests/CMakeFiles/h2p_tests.dir/plan_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/plan_test.cpp.o.d"
  "/root/repo/tests/planner_test.cpp" "tests/CMakeFiles/h2p_tests.dir/planner_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/planner_test.cpp.o.d"
  "/root/repo/tests/processor_test.cpp" "tests/CMakeFiles/h2p_tests.dir/processor_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/processor_test.cpp.o.d"
  "/root/repo/tests/profiler_test.cpp" "tests/CMakeFiles/h2p_tests.dir/profiler_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/profiler_test.cpp.o.d"
  "/root/repo/tests/profiling_noise_test.cpp" "tests/CMakeFiles/h2p_tests.dir/profiling_noise_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/profiling_noise_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/h2p_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/queueing_test.cpp" "tests/CMakeFiles/h2p_tests.dir/queueing_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/queueing_test.cpp.o.d"
  "/root/repo/tests/ridge_test.cpp" "tests/CMakeFiles/h2p_tests.dir/ridge_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/ridge_test.cpp.o.d"
  "/root/repo/tests/runtime_test.cpp" "tests/CMakeFiles/h2p_tests.dir/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/runtime_test.cpp.o.d"
  "/root/repo/tests/search_space_test.cpp" "tests/CMakeFiles/h2p_tests.dir/search_space_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/search_space_test.cpp.o.d"
  "/root/repo/tests/serialize_test.cpp" "tests/CMakeFiles/h2p_tests.dir/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/serialize_test.cpp.o.d"
  "/root/repo/tests/soc_test.cpp" "tests/CMakeFiles/h2p_tests.dir/soc_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/soc_test.cpp.o.d"
  "/root/repo/tests/tensor_pipeline_test.cpp" "tests/CMakeFiles/h2p_tests.dir/tensor_pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/tensor_pipeline_test.cpp.o.d"
  "/root/repo/tests/tensor_test.cpp" "tests/CMakeFiles/h2p_tests.dir/tensor_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/tensor_test.cpp.o.d"
  "/root/repo/tests/thermal_test.cpp" "tests/CMakeFiles/h2p_tests.dir/thermal_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/thermal_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/h2p_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/trace_test.cpp.o.d"
  "/root/repo/tests/ulayer_test.cpp" "tests/CMakeFiles/h2p_tests.dir/ulayer_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/ulayer_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/h2p_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/util_test.cpp.o.d"
  "/root/repo/tests/work_stealing_test.cpp" "tests/CMakeFiles/h2p_tests.dir/work_stealing_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/work_stealing_test.cpp.o.d"
  "/root/repo/tests/zoo_nets_test.cpp" "tests/CMakeFiles/h2p_tests.dir/zoo_nets_test.cpp.o" "gcc" "tests/CMakeFiles/h2p_tests.dir/zoo_nets_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/h2p.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
