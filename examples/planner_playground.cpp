// Planner playground: compare every scheme in the repo on a model sequence
// given on the command line (default: one of each kind), on all three SoCs.
//
//   ./planner_playground [model ...]
//   models: alexnet vgg16 googlenet inceptionv4 resnet50 yolov4
//           mobilenetv2 squeezenet bert vit
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "baselines/annealing.h"
#include "baselines/band.h"
#include "baselines/dart.h"
#include "baselines/exhaustive.h"
#include "baselines/mnn_serial.h"
#include "baselines/pipeit.h"
#include "baselines/ulayer.h"
#include "core/planner.h"
#include "models/model_zoo.h"
#include "sim/pipeline_sim.h"
#include "util/table.h"

using namespace h2p;

namespace {

std::optional<ModelId> parse_model(const std::string& name) {
  for (ModelId id : all_model_ids()) {
    std::string lower = to_string(id);
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    if (lower == name) return id;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<ModelId> ids;
  for (int i = 1; i < argc; ++i) {
    const auto id = parse_model(argv[i]);
    if (!id) {
      std::fprintf(stderr, "unknown model: %s\n", argv[i]);
      return 1;
    }
    ids.push_back(*id);
  }
  if (ids.empty()) {
    ids = {ModelId::kYOLOv4, ModelId::kBERT, ModelId::kResNet50,
           ModelId::kSqueezeNet, ModelId::kViT};
  }

  std::printf("sequence:");
  for (ModelId id : ids) std::printf(" %s", to_string(id));
  std::printf("\n\n");

  for (const Soc& soc :
       {Soc::kirin990(), Soc::snapdragon778g(), Soc::snapdragon870()}) {
    std::vector<const Model*> models;
    for (ModelId id : ids) models.push_back(&zoo_model(id));
    const StaticEvaluator eval(soc, models);

    Table table({"Scheme", "Latency (ms)", "Throughput (inf/s)", "Bubbles (ms)"});
    auto add = [&](const char* name, const Timeline& t) {
      table.add_row({name, Table::fmt(t.makespan_ms(), 1),
                     Table::fmt(t.throughput_per_s(), 2),
                     Table::fmt(t.total_bubble_ms(), 1)});
    };

    add("MNN (serial CPU_B)", run_mnn_serial(eval));
    add("Pipe-it (big+small)", run_pipeit(eval));
    add("uLayer (intra-op CPU+GPU)", run_ulayer(eval));
    add("DART (data-parallel CPU/GPU)", run_dart(eval));
    add("Band (greedy + fallback)", run_band(eval));

    const PlannerReport no_ct =
        Hetero2PipePlanner(eval, PlannerOptions::no_ct()).plan();
    add("Hetero2Pipe (No C/T)", simulate_plan(no_ct.plan, eval));

    const PlannerReport full = Hetero2PipePlanner(eval).plan();
    add("Hetero2Pipe", simulate_plan(full.plan, eval));

    if (ids.size() <= 6) {
      add("Exhaustive (reference)",
          simulate_plan(exhaustive_search(eval).plan, eval));
    }
    AnnealingOptions ao;
    ao.iterations = 2000;
    add("Simulated annealing",
        simulate_plan(simulated_annealing(eval, ao).plan, eval));

    std::printf("---- %s ----\n", soc.name().c_str());
    table.print();
    std::printf("\nHetero2Pipe plan:\n%s\n", full.plan.to_string().c_str());
  }
  return 0;
}
