// Continuous video analytics (appendix D's use case): a stream of
// lightweight per-frame classifications (MobileNetV2 / SqueezeNet) runs
// alongside heavyweight periodic jobs (BERT audio transcript analysis,
// YOLOv4 keyframe detection).  Demonstrates (1) the batching workaround
// that aligns lightweight requests with heavy pipeline stages, and (2) the
// real threaded runtime executor running the plan with work stealing.
#include <cstdio>

#include "core/planner.h"
#include "exec/compiled_plan.h"
#include "models/model_zoo.h"
#include "runtime/executor.h"
#include "sim/pipeline_sim.h"
#include "soc/cost_model.h"
#include "util/table.h"

using namespace h2p;

int main() {
  std::printf("=== Continuous video analytics on Kirin 990 ===\n\n");
  const Soc soc = Soc::kirin990();
  const CostModel cost(soc);

  // 1) Batching: how many MobileNetV2 frames fit the duration of one BERT
  //    stage on each processor? (the appendix-D alignment trick)
  const Model& light = zoo_model(ModelId::kMobileNetV2);
  const Model& heavy = zoo_model(ModelId::kBERT);
  const auto cpu_b = static_cast<std::size_t>(soc.find(ProcKind::kCpuBig));
  const double heavy_stage_ms = cost.model_solo_ms(heavy, cpu_b) / 3.0;

  Table batching({"Processor", "1-frame (ms)", "batch aligned to BERT stage",
                  "batched latency (ms)"});
  for (const Processor& p : soc.processors()) {
    if (p.kind == ProcKind::kCpuSmall) continue;
    int batch = 1;
    while (batch < 64 && cost.model_batch_ms(light, p, batch + 1) < heavy_stage_ms) {
      ++batch;
    }
    batching.add_row({p.name, Table::fmt(cost.model_batch_ms(light, p, 1), 2),
                      std::to_string(batch),
                      Table::fmt(cost.model_batch_ms(light, p, batch), 2)});
  }
  batching.print();
  std::printf("(one BERT pipeline stage ~ %.1f ms)\n\n", heavy_stage_ms);

  // 2) Plan a mixed window: 1 detection keyframe + 1 transcript job +
  //    4 frame classifications, then execute it on the real threaded
  //    runtime with work-stealing deques.
  std::vector<const Model*> window = {
      &zoo_model(ModelId::kYOLOv4),      &zoo_model(ModelId::kBERT),
      &zoo_model(ModelId::kMobileNetV2), &zoo_model(ModelId::kSqueezeNet),
      &zoo_model(ModelId::kMobileNetV2), &zoo_model(ModelId::kSqueezeNet),
  };
  const StaticEvaluator eval(soc, window);
  const PlannerReport report = Hetero2PipePlanner(eval).plan();
  // One lowering feeds both the DES validation and the threaded runtime.
  const exec::CompiledPlan compiled = exec::compile(report.plan, eval);
  const Timeline sim = simulate(eval.soc(), tasks_from_compiled(compiled), {});
  std::printf("planned window: %.1f ms simulated makespan, %zu slices\n",
              sim.makespan_ms(), sim.tasks.size());

  const auto jobs = PipelineExecutor::jobs_from_compiled(compiled);
  PipelineExecutor exec(soc.num_processors(), {/*us_per_sim_ms=*/5.0, true});
  const RuntimeResult rt = exec.run(jobs);

  std::size_t stolen = 0;
  for (const RuntimeRecord& r : rt.records) stolen += r.stolen;
  std::printf("threaded runtime: %zu jobs on %zu workers, wall %.2f ms "
              "(scaled 1:200), %zu executed via work stealing\n",
              rt.records.size(), soc.num_processors(), rt.wall_ms, stolen);
  std::printf("\nEvery frame classified while the detector and transcript "
              "jobs pipeline across NPU/CPU/GPU — no serial backlog.\n");
  return 0;
}
