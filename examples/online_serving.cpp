// Online serving: requests arrive over time (Poisson), the planner
// re-plans every few requests (§V-C's "schedule the planner more
// frequently" guidance), and the execution timeline is exported as a
// chrome://tracing JSON for visual inspection.
//
//   ./online_serving [replan_window] [trace.json]
#include <cstdio>
#include <cstdlib>

#include "models/model_zoo.h"
#include "sim/chrome_trace.h"
#include "sim/online.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

using namespace h2p;

int main(int argc, char** argv) {
  const std::size_t window = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const std::string trace_path = argc > 2 ? argv[2] : "/tmp/h2p_online_trace.json";

  const Soc soc = Soc::kirin990();
  Rng rng(42);

  // 20 requests, mean inter-arrival 50 ms (a busy assistant workload).
  std::vector<OnlineRequest> stream;
  double t = 0.0;
  for (int i = 0; i < 20; ++i) {
    stream.push_back({&zoo_model(all_model_ids()[rng.index(kNumZooModels)]), t});
    t += -50.0 * std::log(1.0 - rng.uniform(0.0, 0.999));
  }

  OnlineOptions opts;
  opts.replan_window = window ? window : 1;
  const OnlineResult result = run_online(soc, stream, opts);

  std::printf("=== Online serving on %s (replan window %zu) ===\n\n",
              soc.name().c_str(), opts.replan_window);
  Table table({"Req", "Model", "Arrival (ms)", "Completion latency (ms)"});
  for (std::size_t i = 0; i < stream.size(); ++i) {
    table.add_row({std::to_string(i), stream[i].model->name(),
                   Table::fmt(stream[i].arrival_ms, 1),
                   Table::fmt(result.completion_ms[i], 1)});
  }
  table.print();

  const Summary s = summarize(result.completion_ms);
  std::printf("\nreplans: %d | plan-cache hits: %d | makespan: %.1f ms | "
              "completion mean %.1f / p90 %.1f ms\n",
              result.replans, result.cache_hits, result.timeline.makespan_ms(),
              s.mean, s.p90);

  write_chrome_trace(result.timeline, soc, trace_path);
  std::printf("chrome://tracing timeline written to %s\n", trace_path.c_str());
  return 0;
}
