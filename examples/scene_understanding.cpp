// Scene understanding (the paper's motivating app, Sec. I): one camera
// frame plus a text prompt fan out into several downstream DNNs —
// object detection (YOLOv4), per-crop classification (ResNet50 for objects,
// MobileNetV2 for faces-as-attributes), scene captioning (ViT encoder +
// BERT-style text model).  The example compares serial CPU execution
// against the Hetero2Pipe plan and prints where every slice of every model
// ran.
#include <cstdio>

#include "baselines/mnn_serial.h"
#include "core/planner.h"
#include "models/model_zoo.h"
#include "sim/pipeline_sim.h"
#include "util/table.h"

using namespace h2p;

int main() {
  std::printf("=== Scene-understanding app on Kirin 990 ===\n\n");
  const Soc soc = Soc::kirin990();

  struct Task {
    const char* role;
    ModelId model;
  };
  // The exact application mix the paper's introduction motivates: YOLO for
  // detection, FaceNet + Age/GenderNet for faces, ViT-GPT2 for captioning.
  const std::vector<Task> app = {
      {"object detection", ModelId::kYOLOv4},
      {"face embedding", ModelId::kFaceNet},
      {"age/gender attributes", ModelId::kAgeGenderNet},
      {"scene encoder (ViT)", ModelId::kViT},
      {"caption decoder (GPT-2)", ModelId::kGPT2Decoder},
  };

  std::vector<const Model*> models;
  for (const Task& t : app) models.push_back(&zoo_model(t.model));
  const StaticEvaluator eval(soc, models);

  // Baseline: the CPU-centric serial pipeline the paper's intro criticizes.
  const double serial_ms = run_mnn_serial(eval).makespan_ms();

  const PlannerReport report = Hetero2PipePlanner(eval).plan();
  const Timeline timeline = simulate_plan(report.plan, eval);

  Table table({"Request", "Role", "H/L", "Slices (stage -> layers)"});
  for (std::size_t slot = 0; slot < report.plan.models.size(); ++slot) {
    const ModelPlan& mp = report.plan.models[slot];
    std::string slices;
    for (std::size_t k = 0; k < mp.slices.size(); ++k) {
      if (mp.slices[k].empty()) continue;
      slices += std::string(to_string(soc.processor(k).kind)) + "[" +
                std::to_string(mp.slices[k].begin) + "," +
                std::to_string(mp.slices[k].end) + ") ";
    }
    table.add_row({to_string(app[mp.model_index].model), app[mp.model_index].role,
                   mp.high_contention ? "H" : "L", slices});
  }
  table.print();

  std::vector<std::string> proc_names;
  for (const Processor& p : soc.processors()) proc_names.push_back(p.name);
  std::printf("\n%s\n", timeline.gantt(proc_names).c_str());

  std::printf("serial CPU_B: %.1f ms  ->  Hetero2Pipe: %.1f ms  (%.2fx faster)\n",
              serial_ms, timeline.makespan_ms(),
              serial_ms / timeline.makespan_ms());
  std::printf("frame-to-full-understanding latency budget at 1 FPS: %s\n",
              timeline.makespan_ms() < 1000.0 ? "MET" : "MISSED");
  return 0;
}
