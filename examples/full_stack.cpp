// Full stack: the Hetero2Pipe planner's decisions driving *real tensor
// computation*.  Requests are planned at zoo scale (cost model + DES), the
// resulting slice boundaries are transferred onto executable miniature
// networks, and the threaded tensor pipeline streams actual fp32 tensors
// through the stages — verifying the outputs against serial execution.
#include <cstdio>

#include "core/planner.h"
#include "engine/tensor_pipeline.h"
#include "engine/zoo_nets.h"
#include "sim/pipeline_sim.h"
#include "util/table.h"

using namespace h2p;

int main() {
  const Soc soc = Soc::kirin990();
  const std::vector<ModelId> ids = {ModelId::kResNet50, ModelId::kBERT,
                                    ModelId::kSqueezeNet, ModelId::kMobileNetV2,
                                    ModelId::kYOLOv4};

  // 1) Plan at zoo scale.
  std::vector<const Model*> models;
  for (ModelId id : ids) models.push_back(&zoo_model(id));
  const StaticEvaluator eval(soc, models);
  const PlannerReport report = Hetero2PipePlanner(eval).plan();
  const Timeline sim = simulate_plan(report.plan, eval);
  std::printf("=== planner (zoo scale) ===\n%s", report.plan.to_string().c_str());
  std::printf("simulated makespan: %.1f ms\n\n", sim.makespan_ms());

  // 2) Transfer the slicing onto executable miniatures and run real tensors.
  std::vector<TensorNet> nets;
  nets.reserve(ids.size());
  for (std::size_t slot = 0; slot < report.plan.models.size(); ++slot) {
    const ModelId id = ids[report.plan.models[slot].model_index];
    nets.push_back(make_tiny_net(id, 1000 + slot));
  }
  std::vector<TensorRequest> requests;
  std::vector<Tensor> expected;
  for (std::size_t slot = 0; slot < nets.size(); ++slot) {
    const ModelPlan& mp = report.plan.models[slot];
    const ModelId id = ids[mp.model_index];
    Tensor input = make_tiny_input(id, 2000 + slot);
    expected.push_back(nets[slot].run(input));
    requests.push_back({&nets[slot], std::move(input),
                        boundaries_from_plan(mp, eval.model(mp.model_index).num_layers(),
                                             nets[slot].num_ops())});
  }

  const TensorPipelineResult result =
      run_tensor_pipeline(std::move(requests), soc.num_processors());

  std::printf("=== tensor pipeline (real fp32 execution, %zu stages) ===\n",
              soc.num_processors());
  Table table({"Slot", "Net", "Output shape", "Checksum", "Matches serial"});
  bool all_ok = true;
  for (std::size_t slot = 0; slot < nets.size(); ++slot) {
    const bool ok = result.outputs[slot].allclose(expected[slot], 1e-4f);
    all_ok &= ok;
    table.add_row({std::to_string(slot), nets[slot].name(),
                   result.outputs[slot].shape_str(),
                   Table::fmt(result.outputs[slot].checksum(), 4),
                   ok ? "yes" : "NO"});
  }
  table.print();
  std::printf("\npipelined execution %s serial reference (wall %.2f ms)\n",
              all_ok ? "MATCHES" : "DIVERGES FROM", result.wall_ms);
  return all_ok ? 0 : 1;
}
