// Quickstart: plan and simulate a multi-DNN pipeline in ~30 lines.
//
//   1. pick a SoC (Kirin 990 here),
//   2. pick the models to serve,
//   3. build a StaticEvaluator (cost tables + contention model),
//   4. run the Hetero2Pipe planner,
//   5. simulate the plan and inspect the timeline.
#include <cstdio>

#include "core/planner.h"
#include "models/model_zoo.h"
#include "sim/pipeline_sim.h"

using namespace h2p;

int main() {
  const Soc soc = Soc::kirin990();

  std::vector<const Model*> requests = {
      &zoo_model(ModelId::kResNet50),
      &zoo_model(ModelId::kBERT),
      &zoo_model(ModelId::kSqueezeNet),
      &zoo_model(ModelId::kMobileNetV2),
  };

  const StaticEvaluator eval(soc, requests);
  const PlannerReport report = Hetero2PipePlanner(eval).plan();

  std::printf("%s\n", report.plan.to_string().c_str());

  const Timeline timeline = simulate_plan(report.plan, eval);
  std::vector<std::string> proc_names;
  for (const Processor& p : soc.processors()) proc_names.push_back(p.name);
  std::printf("%s\n", timeline.gantt(proc_names).c_str());

  std::printf("makespan: %.2f ms  |  throughput: %.2f inferences/s\n",
              timeline.makespan_ms(), timeline.throughput_per_s());
  std::printf("pipeline bubbles (measured idle): %.2f ms\n",
              timeline.total_bubble_ms());
  std::printf("time lost to co-execution slowdown: %.2f ms\n",
              timeline.total_contention_ms());
  return 0;
}
